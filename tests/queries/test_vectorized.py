"""The vectorised batch-kernel backend: packing, engines, caching, parity.

The NumPy-engine tests run everywhere; the JAX-engine tests carry the
``requires_jax`` marker and are auto-skipped when the optional dependency
is not importable (see ``conftest.py``), while JAX *absence* paths are
exercised deterministically by monkeypatching the cached import.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.queries.vectorized as vectorized
from repro.core.pmw import PMWConfig, private_multiplicative_weights
from repro.queries.backends import EvaluatorConfig, EvaluatorContext
from repro.queries.evaluation import (
    WorkloadEvaluator,
    auto_evaluator_mode,
    shared_evaluator,
)
from repro.queries.vectorized import (
    NumpyKernel,
    PackedWorkload,
    VectorizedBackend,
    plan_buckets,
    resolve_engine,
)
from repro.queries.workload import Workload
from repro.relational.hypergraph import two_table_query
from repro.relational.instance import Instance


def _marginal_workload() -> Workload:
    """Two marginal families with distinct support sizes (24 vs 20 cells):
    close enough to share a padding bucket, ragged enough that the padded
    total strictly exceeds the exact support total."""
    query = two_table_query(5, 4, 6)
    return Workload.attribute_marginals(query, "A").extended(
        Workload.attribute_marginals(query, "C").queries
    )


def _mixed_workload(seed: int = 0) -> Workload:
    query = two_table_query(5, 4, 6)
    workload = Workload.attribute_marginals(query, "B")
    return workload.extended(
        Workload.random_predicates(
            query, 3, selectivity=0.4, seed=seed, include_counting=False
        ).queries
    )


def _random_instance(workload: Workload, seed: int) -> Instance:
    rng = np.random.default_rng(seed)
    query = workload.join_query
    tuples = {
        schema.name: [
            tuple(int(rng.integers(size)) for size in schema.shape) for _ in range(40)
        ]
        for schema in query.relations
    }
    return Instance.from_tuple_lists(query, tuples)


def _force_jax_absent(monkeypatch):
    monkeypatch.setattr(vectorized, "_jax_module", None)


class TestPlanBuckets:
    def test_order_is_a_permutation_and_spans_partition(self):
        sizes = [7, 1, 100, 3, 3, 50, 2]
        order, spans, padded = plan_buckets(sizes)
        assert sorted(order.tolist()) == list(range(len(sizes)))
        assert spans[0][0] == 0 and spans[-1][1] == len(sizes)
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo
        # Sorted within and across buckets.
        sorted_sizes = np.asarray(sizes)[order]
        assert np.all(np.diff(sorted_sizes) >= 0)
        assert padded >= sum(sizes)

    def test_growth_bound_keeps_per_bucket_waste_under_the_limit(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(1, 10_000, size=200)
        order, spans, padded = plan_buckets(sizes)
        sorted_sizes = sizes[order]
        for lo, hi in spans:
            bucket = sorted_sizes[lo:hi]
            # A new bucket opens past _BUCKET_GROWTH x the bucket minimum.
            assert bucket[-1] <= vectorized._BUCKET_GROWTH * max(1, bucket[0])
        assert padded <= vectorized._WASTE_LIMIT * int(sizes.sum())

    def test_bucket_cap_enforced_by_cheapest_merges(self):
        # Geometric sizes would open one bucket each without the cap.
        sizes = [2**k for k in range(30)]
        _order, spans, padded = plan_buckets(sizes)
        assert len(spans) <= vectorized._BUCKET_CAP
        assert padded >= sum(sizes)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            plan_buckets([])
        with pytest.raises(ValueError):
            plan_buckets([3, -1])


class TestPackedWorkload:
    def _packed(self):
        indptr = np.array([0, 2, 5, 5, 9])
        indices = np.array([4, 1, 0, 2, 3, 5, 6, 7, 1])
        values = np.arange(1.0, 10.0)
        return PackedWorkload(indptr, indices, values), indptr, indices, values

    def test_query_slices_roundtrip_zero_copy(self):
        packed, indptr, indices, values = self._packed()
        assert packed.num_queries == 4
        assert packed.total_entries == 9
        for index in range(packed.num_queries):
            lo, hi = indptr[index], indptr[index + 1]
            got_indices, got_values = packed.query_slice(index)
            assert np.array_equal(got_indices, indices[lo:hi])
            assert np.array_equal(got_values, values[lo:hi])
            assert got_indices.base is packed.indices  # views, not copies

    def test_buckets_cover_every_query_with_zero_padding(self):
        packed, _indptr, _indices, _values = self._packed()
        seen = []
        for rows, index_matrix, weight_matrix in packed.buckets():
            assert index_matrix.shape == weight_matrix.shape
            for position, row in enumerate(rows):
                row_indices, row_values = packed.query_slice(int(row))
                width = row_indices.size
                assert np.array_equal(index_matrix[position, :width], row_indices)
                assert np.array_equal(weight_matrix[position, :width], row_values)
                # Pad positions contribute exact zeros.
                assert np.all(weight_matrix[position, width:] == 0.0)
            seen.extend(int(row) for row in rows)
        assert sorted(seen) == list(range(packed.num_queries))
        assert packed.padded_entries >= packed.total_entries
        assert packed.waste_ratio == packed.padded_entries / packed.total_entries


class TestNumpyEngine:
    def test_fused_csr_matvec_bitwise_vs_sparse(self):
        pytest.importorskip("scipy")
        workload = _mixed_workload()
        rng = np.random.default_rng(1)
        flat = rng.random(workload.join_query.joint_domain_size) * 5.0
        sparse = WorkloadEvaluator(workload, mode="sparse")
        vector = WorkloadEvaluator(workload, mode="vector", engine="numpy")
        kernel = vector.backend._ensure_kernel()
        assert kernel.fused
        assert np.array_equal(
            vector.answers_on_histogram(flat), sparse.answers_on_histogram(flat)
        )

    def test_einsum_fallback_without_scipy(self, monkeypatch):
        """No scipy -> padded-einsum path, 1e-9 parity on the same packing."""
        monkeypatch.setattr(vectorized, "_scipy_sparse_module", None)
        workload = _mixed_workload(seed=2)
        rng = np.random.default_rng(3)
        flat = rng.random(workload.join_query.joint_domain_size) * 5.0
        sparse = WorkloadEvaluator(workload, mode="sparse")
        vector = WorkloadEvaluator(workload, mode="vector", engine="numpy")
        kernel = NumpyKernel(vector.backend.packed_workload(), vector.domain_size)
        assert not kernel.fused
        reference = sparse.answers_on_histogram(flat)
        scale = max(1.0, float(np.abs(reference).max()))
        assert np.max(np.abs(kernel.answers(flat) - reference)) <= 1e-9 * scale

    def test_supports_and_instance_answers_inherited(self):
        workload = _mixed_workload()
        instance = _random_instance(workload, seed=4)
        sparse = WorkloadEvaluator(workload, mode="sparse")
        vector = WorkloadEvaluator(workload, mode="vector", engine="numpy")
        assert np.array_equal(
            vector.answers_on_instance(instance), sparse.answers_on_instance(instance)
        )
        for index in range(len(workload)):
            v_indices, v_values = vector.query_support(index)
            s_indices, s_values = sparse.query_support(index)
            assert np.array_equal(v_indices, s_indices)
            assert np.array_equal(v_values, s_values)

    def test_histogram_session_routes_through_the_kernel(self):
        workload = _mixed_workload()
        rng = np.random.default_rng(5)
        flat = rng.random(workload.join_query.joint_domain_size)
        sparse = WorkloadEvaluator(workload, mode="sparse")
        vector = WorkloadEvaluator(workload, mode="vector", engine="numpy")
        session = vector.histogram_session(flat)
        try:
            assert np.array_equal(
                session.answers(), sparse.answers_on_histogram(flat)
            )
            indices = np.array([0, 3, 7], dtype=np.int64)
            session.scale_support(indices, np.full(3, 1.25))
            session.scale(2.0)
            expected = flat.copy()
            expected[indices] *= 1.25
            expected *= 2.0
            assert np.array_equal(
                session.answers(), sparse.answers_on_histogram(expected)
            )
        finally:
            session.close()

    def test_pmw_selections_bitwise_vs_sparse(self):
        workload = _mixed_workload()
        instance = _random_instance(workload, seed=6)
        config = PMWConfig(num_iterations=4)
        results = [
            private_multiplicative_weights(
                instance, workload, 1.0, 1e-5, 2.0,
                seed=19,
                evaluator=WorkloadEvaluator(workload, mode=mode, engine=engine),
                config=config,
            )
            for mode, engine in (("sparse", None), ("vector", "numpy"))
        ]
        assert results[0].selected_queries == results[1].selected_queries
        assert results[0].noisy_total == results[1].noisy_total
        assert np.array_equal(results[0].histogram, results[1].histogram)


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        workload = _mixed_workload()
        with pytest.raises(ValueError, match="unknown vector engine"):
            WorkloadEvaluator(workload, mode="vector", engine="cuda")
        with pytest.raises(ValueError, match="unknown vector engine"):
            resolve_engine("cuda")

    def test_explicit_jax_without_jax_is_an_error(self, monkeypatch):
        _force_jax_absent(monkeypatch)
        workload = _mixed_workload()
        with pytest.raises(ValueError, match="not importable"):
            WorkloadEvaluator(workload, mode="vector", engine="jax")

    def test_auto_detection_falls_back_to_numpy(self, monkeypatch):
        _force_jax_absent(monkeypatch)
        assert resolve_engine(None) == "numpy"
        assert not vectorized.jax_available()
        assert not vectorized.accelerator_available()
        workload = _mixed_workload()
        evaluator = WorkloadEvaluator(workload, mode="vector")
        assert evaluator.engine == "numpy"
        assert evaluator.backend.engine == "numpy"

    def test_engine_property_reflects_configuration(self):
        workload = _mixed_workload()
        vector = WorkloadEvaluator(workload, mode="vector", engine="numpy")
        assert vector.engine == "numpy"
        # Non-vector backends just echo the configured engine (None here).
        assert WorkloadEvaluator(workload, mode="sparse").engine is None


class TestCostModel:
    def _context(self, workload, **config):
        return EvaluatorContext(workload, EvaluatorConfig(**config))

    def test_small_workloads_stay_below_the_packing_threshold(self):
        workload = _mixed_workload()
        cost = VectorizedBackend.estimate_cost(self._context(workload))
        assert not cost.eligible
        assert "below the packing threshold" in cost.reason
        assert auto_evaluator_mode(workload) == "dense"

    def test_accelerator_drops_the_threshold_to_zero(self, monkeypatch):
        monkeypatch.setattr(vectorized, "accelerator_available", lambda: True)
        workload = _mixed_workload()
        cost = VectorizedBackend.estimate_cost(self._context(workload))
        assert cost.eligible

    def test_auto_upgrades_once_the_workload_amortises_packing(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_MIN_PACKED_ENTRIES", 0)
        workload = _mixed_workload()
        # Dense priced out by the cell budget; vector outranks sparse.
        assert auto_evaluator_mode(workload, cell_budget=10) == "vector"
        constructed = WorkloadEvaluator(workload, cell_budget=10)
        assert constructed.mode == "vector"

    def test_unpackable_supports_report_nothing_to_pack(self):
        workload = _mixed_workload()
        cost = VectorizedBackend.estimate_cost(
            self._context(workload, sparse_cell_budget=1)
        )
        assert not cost.eligible
        assert "nothing to pack" in cost.reason
        assert cost.memory_bytes == 0

    def test_padded_packing_checked_against_the_sparse_budget(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_MIN_PACKED_ENTRIES", 0)
        workload = _marginal_workload()
        packed = WorkloadEvaluator(
            workload, mode="vector", engine="numpy"
        ).backend.packed_workload()
        assert packed.padded_entries > packed.total_entries  # genuinely ragged
        cost = VectorizedBackend.estimate_cost(
            self._context(workload, sparse_cell_budget=packed.total_entries)
        )
        assert not cost.eligible
        assert "exceeds sparse cell budget" in cost.reason

    def test_ragged_workloads_fail_the_rectangularity_probe(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_MIN_PACKED_ENTRIES", 0)
        monkeypatch.setattr(vectorized, "_WASTE_LIMIT", 1.0)
        workload = _marginal_workload()
        cost = VectorizedBackend.estimate_cost(self._context(workload))
        assert not cost.eligible
        assert "too ragged" in cost.reason
        # The auto choice and the cost report share one probe.
        assert not VectorizedBackend.is_eligible(self._context(workload))


class TestWorkloadCache:
    def test_packed_tensors_shared_across_evaluators(self):
        workload = _mixed_workload()
        first = WorkloadEvaluator(workload, mode="vector", engine="numpy")
        second = WorkloadEvaluator(workload, mode="vector", engine="numpy")
        assert first.backend.packed_workload() is second.backend.packed_workload()
        assert first.backend._ensure_kernel() is second.backend._ensure_kernel()

    def test_cache_hit_still_serves_supports_and_answers(self):
        workload = _mixed_workload()
        rng = np.random.default_rng(8)
        flat = rng.random(workload.join_query.joint_domain_size)
        sparse = WorkloadEvaluator(workload, mode="sparse")
        first = WorkloadEvaluator(workload, mode="vector", engine="numpy")
        first.answers_on_histogram(flat)  # populate the workload cache
        second = WorkloadEvaluator(workload, mode="vector", engine="numpy")
        assert np.array_equal(
            second.answers_on_histogram(flat), sparse.answers_on_histogram(flat)
        )
        for index in (0, len(workload) - 1):
            assert np.array_equal(
                second.query_support(index)[0], sparse.query_support(index)[0]
            )
            assert second.support_size(index) == sparse.support_size(index)

    def test_shared_evaluator_canonicalises_the_engine_key(self, monkeypatch):
        _force_jax_absent(monkeypatch)
        workload = _mixed_workload()
        # With JAX absent, engine=None resolves to "numpy": one cache entry.
        default = shared_evaluator(workload, backend="vector")
        assert default is shared_evaluator(workload, backend="vector", engine="numpy")
        assert default.mode == "vector"
        # Distinct backends never collide in the cache.
        assert default is not shared_evaluator(workload, backend="sparse")

    def test_shared_evaluator_rejects_bad_engines(self):
        workload = _mixed_workload()
        with pytest.raises(ValueError, match="unknown vector engine"):
            shared_evaluator(workload, backend="vector", engine="cuda")


class TestShardedKernelExport:
    def test_sharded_with_engine_stays_bitwise(self):
        pytest.importorskip("scipy")
        workload = _mixed_workload()
        rng = np.random.default_rng(9)
        flat = rng.random(workload.join_query.joint_domain_size) * 3.0
        sparse = WorkloadEvaluator(workload, mode="sparse")
        plain = WorkloadEvaluator(workload, mode="sharded", workers=2)
        fused = WorkloadEvaluator(workload, mode="sharded", workers=2, engine="numpy")
        try:
            reference = sparse.answers_on_histogram(flat)
            assert np.array_equal(plain.answers_on_histogram(flat), reference)
            assert np.array_equal(fused.answers_on_histogram(flat), reference)
        finally:
            plain.close()
            fused.close()

    def test_shard_matvec_kernels_match_row_spans(self):
        pytest.importorskip("scipy")
        workload = _mixed_workload()
        vector = WorkloadEvaluator(workload, mode="vector", engine="numpy")
        packed = vector.backend.packed_workload()
        row_bounds = np.array([0, 2, packed.num_queries], dtype=np.int64)
        result = vectorized.shard_matvec_kernels(
            row_bounds, packed.indptr, packed.indices, packed.values,
            vector.domain_size,
        )
        assert result is not None
        spans, matrices = result
        assert spans == [(0, 2), (2, packed.num_queries)]
        rng = np.random.default_rng(10)
        flat = rng.random(vector.domain_size)
        full = vector.answers_on_histogram(flat)
        for (row_lo, row_hi), matrix in zip(spans, matrices):
            assert np.array_equal(matrix @ flat, full[row_lo:row_hi])

    def test_export_degrades_to_none_without_scipy(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_scipy_sparse_module", None)
        assert (
            vectorized.shard_matvec_kernels(
                np.array([0, 1]), np.array([0, 2]), np.array([0, 1]),
                np.array([1.0, 1.0]), 4,
            )
            is None
        )


@pytest.mark.requires_jax
class TestJaxEngine:
    def test_jax_answers_match_sparse(self):
        workload = _mixed_workload()
        rng = np.random.default_rng(11)
        flat = rng.random(workload.join_query.joint_domain_size) * 5.0
        sparse = WorkloadEvaluator(workload, mode="sparse")
        vector = WorkloadEvaluator(workload, mode="vector", engine="jax")
        assert vector.engine == "jax"
        reference = sparse.answers_on_histogram(flat)
        scale = max(1.0, float(np.abs(reference).max()))
        assert np.max(
            np.abs(vector.answers_on_histogram(flat) - reference)
        ) <= 1e-9 * scale

    def test_device_session_implements_the_op_protocol(self):
        workload = _mixed_workload()
        rng = np.random.default_rng(12)
        flat = rng.random(workload.join_query.joint_domain_size)
        sparse = WorkloadEvaluator(workload, mode="sparse")
        vector = WorkloadEvaluator(workload, mode="vector", engine="jax")
        session = vector.histogram_session(flat)
        try:
            indices = np.array([0, 2, 5], dtype=np.int64)
            session.scale_support(indices, np.full(3, 1.5))
            session.scale(2.0)
            expected = flat.copy()
            expected[indices] *= 1.5
            expected *= 2.0
            reference = sparse.answers_on_histogram(expected)
            scale = max(1.0, float(np.abs(reference).max()))
            assert np.max(np.abs(session.answers() - reference)) <= 1e-9 * scale
            assert session.total() == pytest.approx(float(expected.sum()))
            session.accumulate()
            _lo, _hi, averaged = next(iter(session.averaged_slices(2.0)))
            assert np.max(np.abs(averaged - expected / 2.0)) <= 1e-9 * max(
                1.0, float(np.abs(expected).max())
            )
        finally:
            session.close()

    def test_pmw_selections_bitwise_vs_sparse(self):
        workload = _mixed_workload()
        instance = _random_instance(workload, seed=13)
        config = PMWConfig(num_iterations=4)
        results = [
            private_multiplicative_weights(
                instance, workload, 1.0, 1e-5, 2.0,
                seed=29,
                evaluator=WorkloadEvaluator(workload, mode=mode, engine=engine),
                config=config,
            )
            for mode, engine in (("sparse", None), ("vector", "jax"))
        ]
        assert results[0].selected_queries == results[1].selected_queries
        assert results[0].noisy_total == results[1].noisy_total
