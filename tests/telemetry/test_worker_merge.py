"""Cross-process aggregation: per-worker buffers merge into the parent.

Unit level: the flush/drain protocol over a real ``SimpleQueue`` preserves
totals and labels every merged series with the worker pid.  Integration
level: a 2-worker sharded evaluation records per-worker task counts and
shard-evaluation timings, and after pool shutdown the parent's registry
accounts for every dispatched shard task exactly once.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro import telemetry
from repro.queries.evaluation import WorkloadEvaluator
from repro.queries.workload import Workload
from repro.relational.hypergraph import two_table_query
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.workers import (
    create_flush_queue,
    drain_flush_queue,
    flush_worker_telemetry,
    init_worker_telemetry,
)


def _workload(seed: int = 0) -> Workload:
    query = two_table_query(5, 4, 6)
    workload = Workload.attribute_marginals(query, "B")
    return workload.extended(
        Workload.random_sign(query, 3, seed=seed + 1, include_counting=False).queries
    )


class TestFlushDrainProtocol:
    def test_drain_merges_snapshots_with_pid_labels(self):
        telemetry.configure()
        queue = create_flush_queue(multiprocessing.get_context())
        try:
            for fake_pid, tasks in ((101, 3), (202, 1)):
                worker_registry = MetricsRegistry()
                worker_registry.counter("worker.tasks").add(tasks)
                worker_registry.distribution("worker.eval_seconds").observe(0.5)
                queue.put((fake_pid, worker_registry.snapshot()))
            merged = drain_flush_queue(queue, label="worker")
        finally:
            queue.close()
        assert merged == 2
        flat = telemetry.registry().flat()
        assert flat["worker.tasks{worker=101}"] == 3.0
        assert flat["worker.tasks{worker=202}"] == 1.0
        assert flat["worker.eval_seconds{worker=101}"]["count"] == 1

    def test_drain_totals_equal_single_process_recording(self):
        # The invariant the protocol exists for: merging per-worker buffers
        # reports the same totals as one process recording everything.
        telemetry.configure()
        single = MetricsRegistry()
        queue = create_flush_queue(multiprocessing.get_context())
        try:
            per_worker = {11: (0.25, 0.75), 22: (1.5,)}
            for fake_pid, samples in per_worker.items():
                worker_registry = MetricsRegistry()
                for value in samples:
                    for registry in (worker_registry, single):
                        registry.counter("worker.tasks").add()
                        registry.distribution("worker.eval_seconds").observe(value)
                queue.put((fake_pid, worker_registry.snapshot()))
            drain_flush_queue(queue, label="worker")
        finally:
            queue.close()
        flat = telemetry.registry().flat()
        total_tasks = sum(
            value for key, value in flat.items() if key.startswith("worker.tasks{")
        )
        assert total_tasks == single.flat()["worker.tasks"]
        merged_seconds = sum(
            entry["total"]
            for key, entry in flat.items()
            if key.startswith("worker.eval_seconds{")
        )
        assert merged_seconds == pytest.approx(
            single.flat()["worker.eval_seconds"]["total"]
        )

    def test_worker_init_resets_inherited_state(self):
        # A fork worker inherits the parent's populated registry; the
        # initializer must start it from zero or every parent metric would
        # double on merge.
        telemetry.configure()
        telemetry.registry().counter("parent.only").add(5)
        queue = create_flush_queue(multiprocessing.get_context())
        try:
            init_worker_telemetry(True, queue, shm_bytes=1728)
            flat = telemetry.registry().flat()
            assert "parent.only" not in flat
            assert flat["worker.shm_mapped_bytes"] == 1728.0
            flush_worker_telemetry(queue)
            pid, snapshot = queue.get()
        finally:
            queue.close()
        assert pid == os.getpid()
        gauges = {entry["name"]: entry["value"] for entry in snapshot["gauges"]}
        assert gauges["worker.shm_mapped_bytes"] == 1728.0

    def test_worker_init_disabled_keeps_telemetry_off(self):
        telemetry.configure()
        init_worker_telemetry(False, None)
        assert not telemetry.is_enabled()

    def test_drain_into_disabled_parent_discards_silently(self):
        queue = create_flush_queue(multiprocessing.get_context())
        try:
            queue.put((1, MetricsRegistry().snapshot()))
            assert not telemetry.is_enabled()
            drain_flush_queue(queue)  # must not raise, must not enable
        finally:
            queue.close()
        assert not telemetry.is_enabled()


class TestShardedIntegration:
    def test_two_worker_pool_merges_per_worker_stats(self):
        telemetry.configure()
        workload = _workload()
        rng = np.random.default_rng(9)
        histogram = rng.random(workload.join_query.shape)
        evaluator = WorkloadEvaluator(workload, mode="sharded", workers=2)
        try:
            for _ in range(2):
                evaluator.answers_on_histogram(histogram)
            num_shards = evaluator.backend._num_shards
            assert num_shards >= 2
        finally:
            evaluator.close()  # joins the pool and drains the flush queue
        flat = telemetry.registry().flat()
        dispatches = flat["sharded.dispatches{backend=sharded}"]
        assert dispatches == 2.0
        worker_tasks = {
            key: value
            for key, value in flat.items()
            if key.startswith("worker.tasks{")
        }
        # Every dispatched shard task is accounted to exactly one worker.
        assert sum(worker_tasks.values()) == dispatches * num_shards
        # Per-worker series stay distinguishable by pid label.
        assert all("worker=" in key for key in worker_tasks)
        shm_gauges = [
            value
            for key, value in flat.items()
            if key.startswith("worker.shm_mapped_bytes{")
        ]
        assert shm_gauges and all(value > 0 for value in shm_gauges)
        eval_seconds = [
            entry
            for key, entry in flat.items()
            if key.startswith("worker.eval_seconds{")
        ]
        assert sum(entry["count"] for entry in eval_seconds) == dispatches * num_shards
