"""Disabled telemetry is a true no-op on the instrumented hot paths.

Two guarantees, tested at two granularities:

- Micro: with telemetry disabled, ``trace`` hands back the shared null span
  and ``registry()`` the shared null instruments — no allocation, no
  recording.
- Macro: a smoke-size E13 run (the PMW loop is the most densely
  instrumented path in the repo) with telemetry disabled stays within 5%
  wall time (plus an absolute jitter allowance) of the same run with every
  instrumented call site short-circuited to raw no-ops via monkeypatching.

The macro comparison uses min-of-N: the minimum over repeats estimates the
noise floor far better than the mean on a busy CI box.
"""

from __future__ import annotations

import time

from repro import telemetry
from repro.experiments import EXPERIMENTS
from repro.telemetry.metrics import NullRegistry
from repro.telemetry.spans import NULL_SPAN

_E13_SMOKE = dict(
    n_sweep=(30,), domain_shape={"X": 6, "Y": 6}, num_queries=8, trials=1, seed=0
)
_REPEATS = 5
# 5% relative, plus an absolute floor: the smoke run takes ~10ms, where a
# single scheduler hiccup dwarfs any plausible instrumentation cost.
_RELATIVE_SLACK = 0.05
_ABSOLUTE_SLACK_SECONDS = 0.050


def _min_wall_seconds() -> float:
    best = float("inf")
    for _ in range(_REPEATS):
        start = time.perf_counter()
        EXPERIMENTS["e13"](**_E13_SMOKE)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_instruments_are_shared_null_singletons():
    assert not telemetry.is_enabled()
    assert isinstance(telemetry.registry(), NullRegistry)
    assert telemetry.trace("pmw.round", query=0) is NULL_SPAN
    # Same objects every time: the disabled path never allocates.
    assert telemetry.registry() is telemetry.registry()
    assert telemetry.registry().counter("x") is telemetry.registry().counter("y")


def test_disabled_run_attaches_no_telemetry():
    result = EXPERIMENTS["e13"](**_E13_SMOKE)
    assert "telemetry" not in result


def test_disabled_overhead_under_five_percent(monkeypatch):
    assert not telemetry.is_enabled()
    # Warm every code path (imports, caches) before timing anything.
    EXPERIMENTS["e13"](**_E13_SMOKE)

    disabled = _min_wall_seconds()

    # Baseline: the same run with the instrumented call sites in the PMW
    # loop (the hot path) bypassed entirely — what the code would cost had
    # it never been instrumented.
    import repro.core.pmw as pmw

    monkeypatch.setattr(pmw, "trace", lambda name, **attrs: NULL_SPAN)
    monkeypatch.setattr(pmw, "telemetry_registry", lambda: telemetry.registry())
    baseline = _min_wall_seconds()

    allowance = baseline * _RELATIVE_SLACK + _ABSOLUTE_SLACK_SECONDS
    assert disabled <= baseline + allowance, (
        f"disabled-telemetry run took {disabled:.4f}s vs {baseline:.4f}s "
        f"uninstrumented baseline (allowance {allowance:.4f}s)"
    )
