"""The live scrape exporter: endpoints, edge cases, lifecycle.

The ISSUE-mandated edge cases all live here: scraping before any metric
exists, scraping while telemetry is disabled (the null registry), starting
on a port that is already taken (a clean, synchronous error), and a clean
shutdown that leaves no server thread behind.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.mechanisms.ledger import PrivacyLedger
from repro.mechanisms.spec import PrivacySpec
from repro.telemetry.exporter import (
    PROMETHEUS_CONTENT_TYPE,
    TelemetryExporter,
    prometheus_exposition,
)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, dict(response.headers), response.read().decode("utf-8")


@pytest.fixture()
def exporter():
    exporter = TelemetryExporter(port=0)
    exporter.start()
    yield exporter
    exporter.stop()


class TestEndpoints:
    def test_metrics_before_any_metric_recorded(self, exporter):
        telemetry.configure(enabled=True)
        status, headers, body = _get(exporter.url() + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert "no metrics recorded" in body

    def test_metrics_while_disabled_serves_null_registry(self, exporter):
        telemetry.disable()
        status, headers, body = _get(exporter.url() + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert "no metrics recorded" in body

    def test_metrics_after_recording(self, exporter):
        telemetry.configure(enabled=True)
        telemetry.registry().counter("pmw.rounds", experiment="e13").add()
        status, _headers, body = _get(exporter.url() + "/metrics")
        assert status == 200
        assert "# TYPE pmw_rounds counter" in body
        assert 'pmw_rounds{experiment="e13"} 1.0' in body

    def test_healthz(self, exporter):
        status, _headers, body = _get(exporter.url() + "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0.0

    def test_budget_endpoint(self, exporter):
        ledger = PrivacyLedger()
        ledger.charge("pmw.total", PrivacySpec(0.5, 1e-6))
        exporter.register_ledger("tenant-a", ledger, budget=PrivacySpec(2.0, 1e-4))
        _status, _headers, body = _get(exporter.url() + "/budget")
        tenants = json.loads(body)["tenants"]
        assert tenants["tenant-a"]["charges"] == 1
        assert tenants["tenant-a"]["spent"]["epsilon"] == 0.5
        assert tenants["tenant-a"]["remaining"]["epsilon"] == 1.5
        assert tenants["tenant-a"]["exhausted"] is False

    def test_spans_download(self, exporter):
        telemetry.configure(enabled=True)
        with telemetry.trace("stage.one"):
            pass
        status, headers, body = _get(exporter.url() + "/spans")
        assert status == 200
        assert "attachment" in headers.get("Content-Disposition", "")
        trace = json.loads(body)
        assert any(event.get("name") == "stage.one" for event in trace["traceEvents"])

    def test_unknown_path_is_404(self, exporter):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(exporter.url() + "/nope")
        assert err.value.code == 404


class TestLifecycle:
    def test_port_in_use_raises_synchronously(self):
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as blocker:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            taken_port = blocker.getsockname()[1]
            exporter = TelemetryExporter(port=taken_port)
            with pytest.raises(OSError):
                exporter.start()
            assert not exporter.running

    def test_stop_leaves_no_thread(self):
        exporter = TelemetryExporter(port=0)
        exporter.start()
        port = exporter.port
        name = f"telemetry-exporter:{port}"
        assert any(thread.name == name for thread in threading.enumerate())
        exporter.stop()
        assert not exporter.running
        assert all(thread.name != name for thread in threading.enumerate())
        # The port is free again for the next exporter.
        rebound = TelemetryExporter(port=port)
        rebound.start()
        rebound.stop()

    def test_stop_is_idempotent(self):
        exporter = TelemetryExporter(port=0)
        exporter.start()
        exporter.stop()
        exporter.stop()
        assert not exporter.running

    def test_context_manager(self):
        with TelemetryExporter(port=0) as exporter:
            assert exporter.running
            status, _headers, _body = _get(exporter.url() + "/healthz")
            assert status == 200
        assert not exporter.running


class TestExposition:
    def test_empty_snapshot(self):
        assert prometheus_exposition({}) == "# no metrics recorded\n"

    def test_name_sanitisation_and_label_escaping(self):
        telemetry.configure(enabled=True)
        telemetry.registry().counter("pmw.round-time", path='a"b\\c\nd').add()
        body = prometheus_exposition(telemetry.registry().snapshot())
        assert "# TYPE pmw_round_time counter" in body
        assert 'path="a\\"b\\\\c\\nd"' in body

    def test_distribution_expands_to_summary_gauges(self):
        telemetry.configure(enabled=True)
        distribution = telemetry.registry().distribution("stage.seconds")
        distribution.observe(0.25)
        distribution.observe(0.75)
        body = prometheus_exposition(telemetry.registry().snapshot())
        assert "stage_seconds_count 2.0" in body
        assert "stage_seconds_sum 1.0" in body
        assert "stage_seconds_min 0.25" in body
        assert "stage_seconds_max 0.75" in body
