#!/usr/bin/env python3
"""Static check: ``src/repro/telemetry/`` imports the standard library only.

The telemetry package is the one layer that must load in every context —
pool workers, CI containers, minimal installs — so it may not import numpy,
scipy, or anything else third-party.  This script AST-walks every module in
the package and reports any import whose top-level name is neither a
standard-library module nor the package itself (relative imports and
``repro.telemetry`` absolute imports are the only non-stdlib names allowed).

Runs standalone (the CI job calls it before installing any dependencies)::

    python tests/telemetry/check_stdlib_only.py

and doubles as the implementation behind the tier-1 test
``tests/telemetry/test_stdlib_only.py``.  Exit status 0 means clean.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

TELEMETRY_DIR = Path(__file__).resolve().parents[2] / "src" / "repro" / "telemetry"

#: Import prefixes that are legal besides the standard library: the package
#: importing from itself (``repro.telemetry.metrics``) and, lazily inside
#: functions only, the facade module (``from repro import telemetry``).
_ALLOWED_PREFIXES = ("repro.telemetry",)
_ALLOWED_EXACT = {"repro"}


def _imported_names(tree: ast.AST):
    """Yield ``(lineno, top_level_name, full_name)`` for every import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name.partition(".")[0], alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import — inside the package by definition
                continue
            module = node.module or ""
            if module in _ALLOWED_EXACT:
                # ``from repro import X`` is only legal for the facade itself.
                for alias in node.names:
                    full = f"{module}.{alias.name}"
                    yield node.lineno, module, full
            else:
                yield node.lineno, module.partition(".")[0], module


def violations() -> list[str]:
    """Every non-stdlib import in the telemetry package, as ``file:line`` strings."""
    stdlib = sys.stdlib_module_names
    found: list[str] = []
    for path in sorted(TELEMETRY_DIR.glob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for lineno, top, full in _imported_names(tree):
            if top in stdlib:
                continue
            if full in _ALLOWED_EXACT or full.startswith(_ALLOWED_PREFIXES):
                continue
            found.append(f"{path.name}:{lineno}: non-stdlib import '{full}'")
    return found


def main() -> int:
    if not TELEMETRY_DIR.is_dir():
        print(f"missing package directory: {TELEMETRY_DIR}", file=sys.stderr)
        return 2
    found = violations()
    for line in found:
        print(line, file=sys.stderr)
    if found:
        print(f"{len(found)} non-stdlib import(s) in repro.telemetry", file=sys.stderr)
        return 1
    print("repro.telemetry imports stdlib only")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
