#!/usr/bin/env python3
"""Static check: the stdlib-only packages import the standard library only.

Thin wrapper over rule **DPA104** (stdlib-only) of the static-analysis
suite — the single implementation lives in
``repro.analysis.static.rules.stdlib_only``.  It covers both packages that
must load in every context: ``repro.telemetry`` (pool workers, minimal
installs) and ``repro.analysis.static`` itself (this very check runs it
before anything is pip-installed).

Because the CI job calls this script *before installing dependencies*, it
must not import ``repro`` (whose ``__init__`` pulls numpy).  The framework
package is self-contained — stdlib and relative imports only, an invariant
DPA104 enforces on it — so it is bootstrapped here by file path under a
private module name, bypassing the package ``__init__`` chain entirely.

Runs standalone::

    python tests/telemetry/check_stdlib_only.py

and doubles as the implementation behind the tier-1 test
``tests/telemetry/test_stdlib_only.py``.  Exit status 0 means clean.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[2]
_PACKAGE_ROOT = _REPO / "src" / "repro"
_STATIC_DIR = _PACKAGE_ROOT / "analysis" / "static"

#: Kept for wrapper compatibility: the primary covered package.
TELEMETRY_DIR = _PACKAGE_ROOT / "telemetry"

_ALIAS = "_repro_dpa_static"


def load_static_framework():
    """Import ``repro.analysis.static`` by path, dependency-free.

    ``submodule_search_locations`` makes the alias a real package, so the
    framework's relative imports resolve without ever touching
    ``repro/__init__.py`` (which imports numpy).
    """
    if _ALIAS in sys.modules:
        return sys.modules[_ALIAS]
    spec = importlib.util.spec_from_file_location(
        _ALIAS,
        _STATIC_DIR / "__init__.py",
        submodule_search_locations=[str(_STATIC_DIR)],
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[_ALIAS] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(_ALIAS, None)
        raise
    return module


def analysis_result():
    """DPA104 over the whole package (only covered dirs produce findings)."""
    static = load_static_framework()
    return static.analyze_paths(
        [_PACKAGE_ROOT],
        rules=[static.rules.StdlibOnlyRule()],
        package_root=_PACKAGE_ROOT,
    )


def violations() -> list[str]:
    """Every non-stdlib import, as ``path:line: message`` strings."""
    return [finding.render() for finding in analysis_result().findings]


def main() -> int:
    if not TELEMETRY_DIR.is_dir() or not _STATIC_DIR.is_dir():
        print(
            f"missing package directory: {TELEMETRY_DIR} or {_STATIC_DIR}",
            file=sys.stderr,
        )
        return 2
    found = violations()
    for line in found:
        print(line, file=sys.stderr)
    if found:
        print(f"{len(found)} non-stdlib import(s) (DPA104)", file=sys.stderr)
        return 1
    print("stdlib-only packages are clean: repro.telemetry, repro.analysis.static")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
