"""The hash-chained audit journal: append, rotate, resume, replay, detect.

The journal's contract has two halves.  *Fidelity*: replaying an intact
journal reproduces the live ledger's composed (ε, δ) total bitwise, across
rotation and process restarts.  *Tamper evidence*: every way of corrupting
the journal after the fact — editing a record, deleting one, swapping two,
or charging the ledger behind the journal's back — is rejected by the
verifier with its own distinct error type.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.mechanisms.ledger import PrivacyLedger
from repro.mechanisms.spec import PrivacySpec
from repro.telemetry.audit import (
    GENESIS_HASH,
    AuditDivergenceError,
    AuditGapError,
    AuditJournal,
    AuditOrderError,
    AuditTamperError,
    journal_segments,
    read_journal,
    replay_composition,
    verify_audit_journal,
)


@pytest.fixture()
def journal_path(tmp_path):
    return tmp_path / "audit.jsonl"


def _fill(journal: AuditJournal, charges) -> None:
    for label, epsilon, delta, group in charges:
        journal.record(label, epsilon, delta, parallel_group=group)


_CHARGES = [
    ("pmw.total", 0.5, 5e-6, None),
    ("pmw.rounds", 0.5, 5e-6, None),
    ("histogram.east", 0.25, 1e-6, "region"),
    ("histogram.west", 0.75, 2e-6, "region"),
    ("pmw.total", 0.125, 1e-7, None),
]


class TestChainAndReplay:
    def test_records_chain_from_genesis(self, journal_path):
        with AuditJournal(journal_path) as journal:
            _fill(journal, _CHARGES)
        records = read_journal(journal_path)
        assert [record.seq for record in records] == [1, 2, 3, 4, 5]
        assert records[0].prev == GENESIS_HASH
        for prior, record in zip(records, records[1:]):
            assert record.prev == prior.digest
        for record in records:
            assert record.expected_hash() == record.digest

    def test_replay_matches_ledger_bitwise(self, journal_path):
        ledger = PrivacyLedger()
        with AuditJournal(journal_path) as journal:
            journal.attach(ledger)
            for label, epsilon, delta, group in _CHARGES:
                ledger.charge(label, PrivacySpec(epsilon, delta), parallel_group=group)
        epsilon, delta = replay_composition(read_journal(journal_path))
        total = ledger.total()
        assert epsilon == total.epsilon  # bitwise, not approx
        assert delta == total.delta
        report = verify_audit_journal(journal_path, ledger=ledger)
        assert report.records == len(_CHARGES)
        assert report.ledger_checked

    def test_verify_empty_journal_is_clean(self, journal_path):
        report = verify_audit_journal(journal_path)
        assert report.records == 0

    def test_budget_check(self, journal_path):
        with AuditJournal(journal_path) as journal:
            _fill(journal, _CHARGES)
        report = verify_audit_journal(journal_path, budget=PrivacySpec(10.0, 1e-3))
        assert report.budget_checked
        with pytest.raises(AuditDivergenceError):
            verify_audit_journal(journal_path, budget=PrivacySpec(1.0, 1e-3))


class TestRotationAndResume:
    def test_rotation_seals_segments_and_chain_survives(self, journal_path):
        with AuditJournal(journal_path, max_bytes=1) as journal:
            _fill(journal, _CHARGES)  # every append rotates
        segments = journal_segments(journal_path)
        assert len(segments) > 1
        records = read_journal(journal_path)
        assert [record.seq for record in records] == [1, 2, 3, 4, 5]
        verify_audit_journal(journal_path)

    def test_resume_continues_the_chain(self, journal_path):
        with AuditJournal(journal_path) as journal:
            _fill(journal, _CHARGES[:2])
            head = journal.head_hash
        # A new process opens the same journal and appends.
        with AuditJournal(journal_path) as journal:
            assert journal.next_seq == 3
            assert journal.head_hash == head
            _fill(journal, _CHARGES[2:])
        records = read_journal(journal_path)
        assert [record.seq for record in records] == [1, 2, 3, 4, 5]
        verify_audit_journal(journal_path)

    def test_resume_after_rotation(self, journal_path):
        with AuditJournal(journal_path, max_bytes=1) as journal:
            _fill(journal, _CHARGES[:3])
        with AuditJournal(journal_path, max_bytes=1) as journal:
            assert journal.next_seq == 4
            _fill(journal, _CHARGES[3:])
        verify_audit_journal(journal_path)
        assert len(read_journal(journal_path)) == 5

    def test_fsync_mode_appends_identically(self, journal_path):
        with AuditJournal(journal_path, fsync=True) as journal:
            _fill(journal, _CHARGES)
        verify_audit_journal(journal_path)
        assert len(read_journal(journal_path)) == len(_CHARGES)


class TestTamperDetection:
    """Each corruption mode maps to its own distinct verifier error."""

    def _written(self, journal_path) -> list[str]:
        with AuditJournal(journal_path) as journal:
            _fill(journal, _CHARGES)
        return journal_path.read_text(encoding="utf-8").splitlines()

    def test_edited_record_is_tampering(self, journal_path):
        lines = self._written(journal_path)
        body = json.loads(lines[2])
        body["epsilon"] = body["epsilon"] * 2  # quietly halve the real spend
        lines[2] = json.dumps(body)
        journal_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(AuditTamperError) as err:
            verify_audit_journal(journal_path)
        assert err.value.kind == "tampered"
        assert err.value.seq == 3

    def test_deleted_record_is_a_gap(self, journal_path):
        lines = self._written(journal_path)
        del lines[1]
        journal_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(AuditGapError) as err:
            verify_audit_journal(journal_path)
        assert err.value.kind == "gap"

    def test_deleted_head_is_a_gap(self, journal_path):
        lines = self._written(journal_path)
        journal_path.write_text("\n".join(lines[1:]) + "\n", encoding="utf-8")
        with pytest.raises(AuditGapError):
            verify_audit_journal(journal_path)

    def test_swapped_records_are_reordering(self, journal_path):
        lines = self._written(journal_path)
        lines[0], lines[1] = lines[1], lines[0]
        journal_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(AuditOrderError) as err:
            verify_audit_journal(journal_path)
        assert err.value.kind == "reordered"

    def test_ledger_divergence(self, journal_path):
        ledger = PrivacyLedger()
        with AuditJournal(journal_path) as journal:
            unsubscribe = journal.attach(ledger)
            for label, epsilon, delta, group in _CHARGES:
                ledger.charge(label, PrivacySpec(epsilon, delta), parallel_group=group)
            unsubscribe()
            # One charge lands in the ledger but never reaches the journal.
            ledger.charge("bypassed", PrivacySpec(0.5, 0.0))
        with pytest.raises(AuditDivergenceError) as err:
            verify_audit_journal(journal_path, ledger=ledger)
        assert err.value.kind == "divergence"

    def test_truncated_tail_vs_ledger_is_divergence(self, journal_path):
        ledger = PrivacyLedger()
        with AuditJournal(journal_path) as journal:
            journal.attach(ledger)
            for label, epsilon, delta, group in _CHARGES:
                ledger.charge(label, PrivacySpec(epsilon, delta), parallel_group=group)
        lines = journal_path.read_text(encoding="utf-8").splitlines()
        journal_path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
        # The shortened journal is internally consistent (seq 1..4 chain),
        # so only the ledger cross-check can expose the missing tail.
        verify_audit_journal(journal_path)
        with pytest.raises(AuditDivergenceError):
            verify_audit_journal(journal_path, ledger=ledger)


class TestJournalBehaviour:
    def test_detach_stops_recording(self, journal_path):
        ledger = PrivacyLedger()
        with AuditJournal(journal_path) as journal:
            unsubscribe = journal.attach(ledger)
            ledger.charge("kept", PrivacySpec(0.1, 0.0))
            unsubscribe()
            ledger.charge("dropped", PrivacySpec(0.2, 0.0))
        records = read_journal(journal_path)
        assert [record.label for record in records] == ["kept"]

    def test_closed_journal_refuses_records(self, journal_path):
        journal = AuditJournal(journal_path)
        journal.record("a", 0.1, 0.0)
        journal.close()
        with pytest.raises(ValueError):
            journal.record("b", 0.1, 0.0)

    def test_appends_are_line_atomic(self, journal_path):
        with AuditJournal(journal_path) as journal:
            _fill(journal, _CHARGES)
        raw = journal_path.read_text(encoding="utf-8")
        assert raw.endswith("\n")
        assert all(json.loads(line) for line in raw.splitlines())

    def test_parent_directories_created(self, tmp_path):
        nested = tmp_path / "a" / "b" / "audit.jsonl"
        with AuditJournal(nested) as journal:
            journal.record("x", 0.1, 0.0)
        assert nested.exists()
        assert os.path.isdir(tmp_path / "a" / "b")
