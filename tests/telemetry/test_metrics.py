"""MetricsRegistry unit behaviour: identity, snapshots, merge, null path."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import MetricsRegistry, NullRegistry


def test_instrument_identity_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("hits", backend="dense")
    b = registry.counter("hits", backend="dense")
    c = registry.counter("hits", backend="sparse")
    assert a is b
    assert a is not c
    # Label order never matters — identity is the sorted label set.
    assert registry.gauge("g", x=1, y=2) is registry.gauge("g", y=2, x=1)
    # Same (name, labels) under a different kind is a different instrument.
    assert registry.distribution("hits", backend="dense") is not a


def test_counter_gauge_distribution_semantics():
    registry = MetricsRegistry()
    registry.counter("n").add()
    registry.counter("n").add(2.5)
    registry.gauge("depth").set(7)
    for value in (3.0, 1.0, 2.0):
        registry.distribution("lat").observe(value)
    flat = registry.flat()
    assert flat["n"] == 3.5
    assert flat["depth"] == 7.0
    assert flat["lat"] == {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}


def test_timer_observes_wall_time():
    registry = MetricsRegistry()
    with registry.timer("block_seconds", stage="pack"):
        pass
    summary = registry.distribution("block_seconds", stage="pack").summary()
    assert summary["count"] == 1
    assert summary["total"] >= 0.0


def test_flat_key_rendering():
    registry = MetricsRegistry()
    registry.counter("evaluator.backend_choice", backend="sharded").add()
    registry.counter("plain").add()
    flat = registry.flat()
    assert flat["evaluator.backend_choice{backend=sharded}"] == 1.0
    assert flat["plain"] == 1.0


def test_merge_equals_single_registry():
    # Recording into two registries and merging must report the same totals
    # as recording everything into one — the cross-process correctness
    # contract behind the worker flush/drain protocol.
    combined = MetricsRegistry()
    parts = [MetricsRegistry(), MetricsRegistry()]
    samples = [(0.5, 1.5, 4.0), (2.0, 0.25, 1.0)]
    for part, values in zip(parts, samples):
        for registry in (part, combined):
            for value in values:
                registry.counter("events").add()
                registry.distribution("lat").observe(value)
    merged = MetricsRegistry()
    for part in parts:
        merged.merge(part.snapshot())
    assert merged.flat() == combined.flat()


def test_merge_labels_keep_workers_distinguishable():
    parent = MetricsRegistry()
    worker = MetricsRegistry()
    worker.counter("worker.tasks").add(3)
    worker.gauge("worker.shm_mapped_bytes").set(1728)
    parent.merge(worker.snapshot(), labels={"worker": "4242"})
    flat = parent.flat()
    assert flat["worker.tasks{worker=4242}"] == 3.0
    assert flat["worker.shm_mapped_bytes{worker=4242}"] == 1728.0


def test_merge_skips_empty_distributions():
    parent = MetricsRegistry()
    child = MetricsRegistry()
    child.distribution("lat")  # created, never observed
    parent.merge(child.snapshot())
    # No poisoned min/max from the empty distribution.
    assert parent.flat().get("lat", {"count": 0})["count"] == 0


def test_clear_resets_to_zero_state():
    registry = MetricsRegistry()
    registry.counter("n").add()
    registry.clear()
    assert registry.flat() == {}


def test_null_registry_hands_out_shared_singletons():
    null = NullRegistry()
    assert null.counter("a") is null.counter("b", any_label="x")
    assert null.gauge("a") is null.gauge("b")
    assert null.distribution("a") is null.distribution("b")
    null.counter("a").add(10)
    null.gauge("a").set(10)
    null.distribution("a").observe(10)
    with null.timer("a"):
        pass
    assert null.flat() == {}
    assert null.snapshot() == {"counters": [], "gauges": [], "distributions": []}
    assert not null.enabled
    assert MetricsRegistry().enabled


def test_snapshot_is_json_shaped():
    import json

    registry = MetricsRegistry()
    registry.counter("n", kind="x").add()
    registry.distribution("lat").observe(1.0)
    json.dumps(registry.snapshot())  # must not raise
    json.dumps(registry.flat())
