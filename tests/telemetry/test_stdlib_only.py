"""Tier-1 enforcement of the stdlib-only contract (rule DPA104).

The same rule runs standalone in CI (``check_stdlib_only.py``) before any
dependencies are installed; this test keeps the invariant inside the
default test collection so a stray ``import numpy`` in ``repro.telemetry``
— or in the static-analysis framework the standalone check bootstraps —
fails locally too.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_CHECKER = Path(__file__).resolve().parent / "check_stdlib_only.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_stdlib_only", _CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_stdlib_only_packages_are_clean():
    checker = _load_checker()
    assert checker.TELEMETRY_DIR.is_dir()
    assert checker.violations() == []


def test_checker_sees_every_module():
    # The walk must actually cover both packages (guards against a path typo
    # silently turning the check into a no-op).
    checker = _load_checker()
    result = checker.analysis_result()
    assert result.files_scanned > 10
    modules = {path.name for path in checker.TELEMETRY_DIR.glob("*.py")}
    assert {"__init__.py", "metrics.py", "spans.py", "workers.py"} <= modules


def test_rule_still_fires_on_seeded_violation(tmp_path):
    # Coverage parity with the old ad-hoc checker: a planted third-party
    # import in a covered package fails; stdlib and facade imports pass.
    checker = _load_checker()
    static = checker.load_static_framework()
    root = tmp_path / "repro"
    telemetry = root / "telemetry"
    telemetry.mkdir(parents=True)
    (telemetry / "bad.py").write_text(
        "import numpy\nfrom repro.queries import backends\n"
    )
    (telemetry / "good.py").write_text(
        "import json\nfrom repro import telemetry\nfrom repro.telemetry import metrics\n"
    )
    (root / "core").mkdir()
    (root / "core" / "uncovered.py").write_text("import numpy\n")

    result = static.analyze_paths(
        [root], rules=[static.rules.StdlibOnlyRule()], package_root=root
    )
    assert [finding.code for finding in result.findings] == ["DPA104", "DPA104"]
    assert {finding.logical for finding in result.findings} == {"telemetry/bad.py"}


def test_standalone_does_not_import_repro_package(tmp_path):
    # The CI job runs the checker before installing numpy: loading the
    # framework must not execute repro/__init__.py.  Simulate by checking
    # that the checker's framework alias is path-loaded, not the package.
    checker = _load_checker()
    module = checker.load_static_framework()
    assert module.__name__ == "_repro_dpa_static"
    assert module.analyze_paths is not None
