"""Tier-1 enforcement of the telemetry package's stdlib-only contract.

The same AST walk runs standalone in CI (``check_stdlib_only.py``) before
any dependencies are installed; this test keeps the invariant inside the
default test collection so a stray ``import numpy`` fails locally too.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_CHECKER = Path(__file__).resolve().parent / "check_stdlib_only.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_stdlib_only", _CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_telemetry_package_imports_stdlib_only():
    checker = _load_checker()
    assert checker.TELEMETRY_DIR.is_dir()
    assert checker.violations() == []


def test_checker_sees_every_module():
    # The walk must actually cover the package (guards against a path typo
    # silently turning the check into a no-op).
    checker = _load_checker()
    modules = {path.name for path in checker.TELEMETRY_DIR.glob("*.py")}
    assert {"__init__.py", "metrics.py", "spans.py", "workers.py"} <= modules
