"""End-to-end telemetry over E13: the ISSUE's acceptance scenario.

A telemetry-enabled smoke-size E13 run must attach a JSON metrics snapshot
to its result and export a Chrome trace whose spans cover the backend
choice, every PMW round, and every mechanism invocation — with the round
spans nested under their run and the mechanism spans nested under their
round.  And recording must be inert: PMW selections are bitwise identical
with telemetry on or off.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import telemetry
from repro.core.pmw import PMWConfig, private_multiplicative_weights
from repro.experiments import EXPERIMENTS
from repro.queries.workload import Workload
from repro.relational.hypergraph import two_table_query
from repro.relational.instance import Instance

_E13_SMOKE = dict(
    n_sweep=(30,), domain_shape={"X": 6, "Y": 6}, num_queries=8, trials=1, seed=0
)


def _run_with_telemetry():
    telemetry.configure()
    telemetry.reset()
    return EXPERIMENTS["e13"](**_E13_SMOKE)


class TestSnapshotAttachment:
    def test_result_carries_json_able_snapshot(self):
        result = _run_with_telemetry()
        snapshot = result["telemetry"]
        assert snapshot["enabled"] is True
        json.dumps(snapshot, default=str)  # the CLI prints exactly this
        metrics = snapshot["metrics"]
        assert metrics["pmw.runs"] >= 1
        assert metrics["pmw.rounds"] >= 1
        assert any(key.startswith("mechanism.invocations{") for key in metrics)
        assert any(key.startswith("evaluator.backend_choice{") for key in metrics)

    def test_stage_summary_covers_the_pmw_loop(self):
        result = _run_with_telemetry()
        stages = result["telemetry"]["stages"]
        for stage in ("experiment.e13", "pmw.run", "pmw.round", "pmw.scores", "pmw.update"):
            assert stage in stages, sorted(stages)
            assert stages[stage]["count"] >= 1
            assert stages[stage]["wall_seconds"] >= 0.0


class TestSpanNesting:
    def test_rounds_nest_under_runs_and_mechanisms_under_rounds(self):
        _run_with_telemetry()
        spans = telemetry.span_dicts()
        by_id = {span["id"]: span for span in spans}
        rounds = [span for span in spans if span["name"] == "pmw.round"]
        assert rounds
        for round_span in rounds:
            parent = by_id[round_span["parent"]]
            assert parent["name"] == "pmw.run"
        mechanisms = [span for span in spans if span["name"].startswith("mechanism.")]
        assert mechanisms
        # The exponential/Laplace draws of the PMW loop sit inside a round;
        # the initial total-size estimate sits directly under the run.
        parent_names = {by_id[span["parent"]]["name"] for span in mechanisms}
        assert "pmw.round" in parent_names
        assert parent_names <= {"pmw.round", "pmw.run"}

    def test_choose_backend_span_recorded(self):
        _run_with_telemetry()
        spans = telemetry.span_dicts()
        chooses = [span for span in spans if span["name"] == "evaluator.choose_backend"]
        assert chooses
        assert all("chosen" in span["attrs"] for span in chooses)

    def test_chrome_trace_loads_and_nests(self, tmp_path):
        _run_with_telemetry()
        path = tmp_path / "e13_trace.json"
        telemetry.export_chrome_trace(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        names = {event["name"] for event in events}
        assert {"experiment.e13", "pmw.run", "pmw.round"} <= names
        assert any(name.startswith("mechanism.") for name in names)
        # Nesting is time containment: every round interval sits inside
        # some run interval on the same pid/tid.
        runs = [event for event in events if event["name"] == "pmw.run"]
        for event in events:
            if event["name"] != "pmw.round":
                continue
            assert any(
                run["ts"] <= event["ts"]
                and event["ts"] + event["dur"] <= run["ts"] + run["dur"] + 1e-6
                and (run["pid"], run["tid"]) == (event["pid"], event["tid"])
                for run in runs
            )


class TestRecordingIsInert:
    def test_pmw_selections_bitwise_identical_on_and_off(self):
        query = two_table_query(4, 4, 4)
        rng = np.random.default_rng(11)
        instance = Instance.from_tuple_lists(
            query,
            {
                "R1": [
                    (int(rng.integers(4)), int(rng.integers(4))) for _ in range(30)
                ],
                "R2": [
                    (int(rng.integers(4)), int(rng.integers(4))) for _ in range(30)
                ],
            },
        )
        workload = Workload.random_sign(query, 10, seed=0)
        config = PMWConfig(num_iterations=4)

        def run_once():
            return private_multiplicative_weights(
                instance, workload, 1.0, 1e-5, 2.0, seed=3, config=config
            )

        telemetry.disable()
        off = run_once()
        telemetry.configure()
        on = run_once()
        telemetry.disable()
        off_again = run_once()
        assert off.selected_queries == on.selected_queries == off_again.selected_queries
        assert np.array_equal(off.histogram, on.histogram)
        assert np.array_equal(off.histogram, off_again.histogram)
