"""Telemetry tests flip the process-wide switch; always restore it.

Every test in this directory runs with whatever telemetry state it sets up,
then the fixture forces the module back to the disabled default so the rest
of the suite (which asserts instrumented code paths are no-ops by default)
is never polluted by ordering.
"""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _telemetry_disabled_after():
    telemetry.disable()
    yield
    telemetry.disable()
