"""Tracing spans: nesting, ring bounds, Chrome-trace export, disabled path."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.telemetry.spans import NULL_SPAN, SpanRing, chrome_trace_events


def test_spans_nest_and_record_parent_links():
    telemetry.configure()
    with telemetry.trace("outer", run=1) as outer:
        with telemetry.trace("inner") as inner:
            with telemetry.trace("innermost"):
                pass
        outer.set(finished=True)
    spans = telemetry.span_dicts()
    by_name = {span["name"]: span for span in spans}
    assert set(by_name) == {"outer", "inner", "innermost"}
    assert by_name["outer"]["parent"] is None
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
    assert by_name["innermost"]["parent"] == by_name["inner"]["id"]
    assert by_name["outer"]["depth"] == 0
    assert by_name["inner"]["depth"] == 1
    assert by_name["innermost"]["depth"] == 2
    assert by_name["outer"]["attrs"] == {"run": 1, "finished": True}
    for span in spans:
        assert span["wall_s"] >= 0.0
        assert span["cpu_s"] >= 0.0


def test_sibling_spans_share_a_parent():
    telemetry.configure()
    with telemetry.trace("run"):
        for i in range(3):
            with telemetry.trace("round", i=i):
                pass
    spans = telemetry.span_dicts()
    run = next(span for span in spans if span["name"] == "run")
    rounds = [span for span in spans if span["name"] == "round"]
    assert len(rounds) == 3
    assert all(span["parent"] == run["id"] for span in rounds)


def test_ring_bounds_and_drop_accounting():
    telemetry.configure(ring_capacity=8)
    for i in range(20):
        with telemetry.trace("tick", i=i):
            pass
    stats = telemetry.snapshot()["spans"]
    assert stats == {"recorded": 20, "retained": 8, "dropped": 12, "capacity": 8}
    # The ring keeps the *newest* spans.
    kept = [span["attrs"]["i"] for span in telemetry.span_dicts()]
    assert kept == list(range(12, 20))


def test_ring_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        SpanRing(capacity=0)


def test_stage_summary_aggregates_by_name():
    telemetry.configure()
    for _ in range(4):
        with telemetry.trace("stage.a"):
            pass
    with telemetry.trace("stage.b"):
        pass
    stages = telemetry.stage_summary()
    assert stages["stage.a"]["count"] == 4
    assert stages["stage.b"]["count"] == 1
    assert stages["stage.a"]["wall_seconds"] >= 0.0
    assert stages["stage.a"]["cpu_seconds"] >= 0.0


def test_chrome_trace_export_round_trips(tmp_path):
    telemetry.configure()
    with telemetry.trace("outer"):
        with telemetry.trace("inner", query=5):
            pass
    path = tmp_path / "trace.json"
    written = telemetry.export_chrome_trace(path)
    assert written == str(path)
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert {event["name"] for event in events} == {"outer", "inner"}
    outer = next(event for event in events if event["name"] == "outer")
    inner = next(event for event in events if event["name"] == "inner")
    for event in events:
        assert event["ph"] == "X"
        assert event["dur"] >= 0.0
        assert "cpu_ms" in event["args"]
    # Nesting in the viewer is time containment: inner starts at or after
    # outer and ends at or before outer's end.
    assert inner["ts"] >= outer["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
    assert inner["args"]["query"] == 5


def test_chrome_trace_events_direct():
    ring = SpanRing(capacity=4)
    payload = chrome_trace_events(ring)
    assert payload == {"traceEvents": [], "displayTimeUnit": "ms"}


def test_export_raises_while_disabled(tmp_path):
    with pytest.raises(RuntimeError):
        telemetry.export_chrome_trace(tmp_path / "trace.json")


def test_disabled_trace_returns_shared_null_span():
    assert not telemetry.is_enabled()
    span = telemetry.trace("anything", x=1)
    assert span is NULL_SPAN
    assert telemetry.trace("other") is span
    with span as entered:
        assert entered is span
        entered.set(y=2)  # accepted, recorded nowhere
    assert telemetry.span_dicts() == []
    assert telemetry.stage_summary() == {}
    assert telemetry.snapshot() == {"enabled": False}


def test_reset_keeps_enabled_but_drops_data():
    telemetry.configure()
    with telemetry.trace("span"):
        pass
    telemetry.registry().counter("n").add()
    telemetry.reset()
    assert telemetry.is_enabled()
    assert telemetry.span_dicts() == []
    assert telemetry.registry().flat() == {}


def test_configure_is_idempotent_but_recapacity_rebounds():
    telemetry.configure(ring_capacity=4)
    with telemetry.trace("keep"):
        pass
    telemetry.configure(ring_capacity=4)  # same capacity: data survives
    assert len(telemetry.span_dicts()) == 1
    telemetry.configure(ring_capacity=2)  # new capacity: fresh ring
    assert telemetry.span_dicts() == []


def test_unbalanced_exit_does_not_corrupt_peers():
    # A generator holding a span can be torn down out of order; sibling
    # spans opened later must keep their own stack entries intact.
    telemetry.configure()

    def traced_gen():
        with telemetry.trace("gen"):
            yield 1
            yield 2

    gen = traced_gen()
    next(gen)
    with telemetry.trace("peer"):
        gen.close()  # exits "gen" while "peer" is on top of the stack
    names = [span["name"] for span in telemetry.span_dicts()]
    assert names.count("peer") == 1
    assert names.count("gen") == 1
