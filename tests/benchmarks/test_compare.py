"""The perf-regression gate (``benchmarks/compare.py``).

Covers the ISSUE-mandated behaviours: identical records pass, an injected
slowdown beyond tolerance fails, a benchmark missing from the candidate run
fails, new benchmarks are reported but do not fail, the absolute floors keep
millisecond jitter from tripping the gate, and the CLI produces the JSON /
markdown reports with the right exit codes.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

spec = importlib.util.spec_from_file_location("compare", _BENCH_DIR / "compare.py")
compare = importlib.util.module_from_spec(spec)
# Dataclass field resolution looks the module up by name at class-creation
# time, so it must be registered before exec.
sys.modules["compare"] = compare
spec.loader.exec_module(compare)


def _record(name: str, wall: float, mib: float = 64.0, stages: dict | None = None) -> dict:
    return {
        "schema_version": 2,
        "benchmark": name,
        "wall_seconds": wall,
        "peak_mib": mib,
        "stages": stages or {},
    }


@pytest.fixture()
def baseline() -> dict:
    return {
        "bench_a": _record(
            "bench_a", 2.0, stages={"pmw.round": {"wall_seconds": 1.5, "count": 4}}
        ),
        "bench_b": _record("bench_b", 0.01),
    }


class TestCompareRecords:
    def test_identical_records_pass(self, baseline):
        report = compare.compare_records(baseline, copy.deepcopy(baseline))
        assert report.ok
        assert not report.regressions
        assert not report.missing and not report.new

    def test_injected_slowdown_fails(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["bench_a"]["wall_seconds"] = 4.0  # 2x, +2s: over both bars
        report = compare.compare_records(baseline, candidate)
        assert not report.ok
        assert [(f.benchmark, f.metric) for f in report.regressions] == [
            ("bench_a", "wall_seconds")
        ]
        assert report.regressions[0].ratio == pytest.approx(2.0)

    def test_stage_slowdown_fails(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["bench_a"]["stages"]["pmw.round"]["wall_seconds"] = 3.75
        report = compare.compare_records(baseline, candidate)
        assert [f.metric for f in report.regressions] == ["stage:pmw.round"]

    def test_stage_comparison_can_be_disabled(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["bench_a"]["stages"]["pmw.round"]["wall_seconds"] = 3.75
        report = compare.compare_records(baseline, candidate, compare_stages=False)
        assert report.ok

    def test_memory_regression(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["bench_b"]["peak_mib"] = 256.0
        report = compare.compare_records(baseline, candidate)
        assert [f.metric for f in report.regressions] == ["peak_mib"]

    def test_millisecond_jitter_is_ignored(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["bench_b"]["wall_seconds"] = 0.05  # 5x, but only +40ms
        report = compare.compare_records(baseline, candidate)
        assert report.ok

    def test_missing_benchmark_fails(self, baseline):
        candidate = copy.deepcopy(baseline)
        del candidate["bench_b"]
        report = compare.compare_records(baseline, candidate)
        assert not report.ok
        assert report.missing == ["bench_b"]

    def test_new_benchmark_does_not_fail(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["bench_c"] = _record("bench_c", 1.0)
        report = compare.compare_records(baseline, candidate)
        assert report.ok
        assert report.new == ["bench_c"]

    def test_speedup_never_regresses(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["bench_a"]["wall_seconds"] = 0.5
        report = compare.compare_records(baseline, candidate)
        assert report.ok

    def test_tolerance_is_configurable(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["bench_a"]["wall_seconds"] = 2.8  # +40%, +0.8s
        assert compare.compare_records(baseline, candidate).ok
        strict = compare.compare_records(baseline, candidate, tolerance=0.25)
        assert not strict.ok


class TestCli:
    def _write(self, directory: Path, records: dict) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        for name, record in records.items():
            path = directory / f"BENCH_{name.removeprefix('bench_')}.json"
            path.write_text(json.dumps(record, indent=2) + "\n")

    def test_clean_run_exits_zero_and_writes_reports(self, tmp_path, baseline, capsys):
        self._write(tmp_path / "base", baseline)
        self._write(tmp_path / "cand", baseline)
        json_out = tmp_path / "report.json"
        md_out = tmp_path / "report.md"
        status = compare.main(
            [
                "--baseline", str(tmp_path / "base"),
                "--candidate", str(tmp_path / "cand"),
                "--json-out", str(json_out),
                "--md-out", str(md_out),
            ]
        )
        assert status == 0
        assert "**PASS**" in capsys.readouterr().out
        report = json.loads(json_out.read_text())
        assert report["ok"] is True
        assert report["compared"] >= 4
        assert md_out.read_text().startswith("# Benchmark regression gate")

    def test_regression_exits_one_with_fail_report(self, tmp_path, baseline, capsys):
        candidate = copy.deepcopy(baseline)
        candidate["bench_a"]["wall_seconds"] = 9.0
        self._write(tmp_path / "base", baseline)
        self._write(tmp_path / "cand", candidate)
        status = compare.main(
            ["--baseline", str(tmp_path / "base"), "--candidate", str(tmp_path / "cand")]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "**FAIL**" in out
        assert "## Regressions" in out

    def test_no_baseline_records_is_usage_error(self, tmp_path, baseline):
        self._write(tmp_path / "cand", baseline)
        (tmp_path / "base").mkdir()
        status = compare.main(
            ["--baseline", str(tmp_path / "base"), "--candidate", str(tmp_path / "cand")]
        )
        assert status == 2

    def test_unreadable_record_raises(self, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        with pytest.raises(ValueError, match="unreadable benchmark record"):
            compare.load_records(tmp_path)

    def test_gate_passes_against_committed_records(self):
        """The committed repo-root baseline must agree with itself."""
        records = compare.load_records(_BENCH_DIR.parent)
        if not records:
            pytest.skip("no committed BENCH records at the repo root")
        report = compare.compare_records(records, copy.deepcopy(records))
        assert report.ok
