"""Opt-in smoke execution of every benchmark script (``--bench-smoke``).

The benchmark suite lives outside the default test collection (the scripts
take minutes at full size), which historically lets them rot silently.  These
tests drive ``benchmarks/run_all.py``: every ``bench_*.py`` must have a
registered tiny-size smoke configuration, still define a ``test_*`` entry
point, and its experiment must execute and honour the ``"table"`` result
contract.

Run with::

    pytest tests/benchmarks --bench-smoke
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench_smoke

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def _load_run_all():
    spec = importlib.util.spec_from_file_location("run_all", _BENCH_DIR / "run_all.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_benchmark_script_has_a_smoke_entry():
    run_all = _load_run_all()
    run_all.check_coverage()
    assert set(run_all.SMOKE_RUNS) == run_all.benchmark_scripts()


def test_all_benchmark_scripts_execute(tmp_path):
    run_all = _load_run_all()
    executed = []
    for name, result in run_all.iter_smoke_results(json_dir=tmp_path):
        executed.append(name)
        assert "table" in result
    assert sorted(executed) == sorted(run_all.SMOKE_RUNS)
    # Every run leaves a machine-readable BENCH_<id>.json perf record with
    # the numbers the cross-PR performance trajectory is tracked by.
    for name in executed:
        record_path = tmp_path / f"BENCH_{name.removeprefix('bench_')}.json"
        assert record_path.exists(), record_path
        record = json.loads(record_path.read_text())
        assert record["schema_version"] == run_all.BENCH_SCHEMA_VERSION
        assert record["benchmark"] == name
        assert record["wall_seconds"] >= 0.0
        assert record["peak_mib"] >= 0.0
        assert isinstance(record["backend"], str) and record["backend"]
        # Schema v2: a parseable UTC timestamp, the host facts the numbers
        # were taken on, and the telemetry stage breakdown.
        assert record["timestamp_utc"]
        host = record["host"]
        assert host["cpu_count"] >= 1 and host["effective_cpus"] >= 1
        assert host["python"] and host["numpy"] and host["platform"]
        assert isinstance(record["stages"], dict)
    # E16 runs the sharded backend even at smoke size (2 workers).
    e16 = json.loads(
        (tmp_path / "BENCH_e16_sharded_evaluation.json").read_text()
    )
    assert e16["backend"] == "sharded"
    # The smoke runner records telemetry, so stage timings must be present
    # for the PMW-driven benchmarks (each stage carries wall/CPU totals).
    e13 = json.loads(
        (tmp_path / "BENCH_e13_single_table_pmw.json").read_text()
    )
    assert "pmw.round" in e13["stages"], sorted(e13["stages"])
    round_stage = e13["stages"]["pmw.round"]
    assert round_stage["count"] >= 1
    assert round_stage["wall_seconds"] >= 0.0
