"""Unit tests for local sensitivity and maximum boundary queries."""

import numpy as np
import pytest

from repro.relational.hypergraph import path3_query, two_table_query
from repro.relational.instance import Instance
from repro.relational.join import join_size
from repro.relational.neighbors import enumerate_neighbors
from repro.sensitivity.boundary import (
    all_boundary_queries,
    boundary_query,
    boundary_query_profile,
)
from repro.sensitivity.local import (
    local_sensitivity,
    local_sensitivity_for_relation,
    per_relation_local_sensitivity,
)


class TestLocalSensitivityTwoTable:
    def test_equals_max_degree(self, two_table_instance):
        first, second = two_table_instance.relations
        expected = max(first.max_degree(["B"]), second.max_degree(["B"]))
        assert local_sensitivity(two_table_instance) == expected

    def test_matches_definition_via_neighbors(self, two_table_instance):
        """LS(I) is exactly the largest join-size change over all neighbours."""
        base = join_size(two_table_instance)
        worst = 0
        for neighbor in enumerate_neighbors(two_table_instance):
            worst = max(worst, abs(join_size(neighbor) - base))
        assert local_sensitivity(two_table_instance) == worst

    def test_per_relation_breakdown(self, two_table_instance):
        per_relation = per_relation_local_sensitivity(two_table_instance)
        assert set(per_relation) == {"R1", "R2"}
        assert max(per_relation.values()) == local_sensitivity(two_table_instance)
        assert local_sensitivity_for_relation(
            two_table_instance, "R1"
        ) == per_relation["R1"]

    def test_empty_instance(self):
        query = two_table_query(3, 3, 3)
        assert local_sensitivity(Instance.empty(query)) == 0

    def test_single_table_is_one(self):
        from repro.relational.hypergraph import single_table_query

        query = single_table_query({"X": 3})
        instance = Instance.from_tuple_lists(query, {"T": [(0,), (1,)]})
        assert local_sensitivity(instance) == 1

    def test_figure1_instance_has_sensitivity_n(self):
        from repro.datagen.synthetic import figure1_pair

        pair = figure1_pair(10)
        assert local_sensitivity(pair.instance) == 10
        assert local_sensitivity(pair.neighbor) == 10


class TestLocalSensitivityMultiTable:
    def test_matches_definition_via_neighbors(self, path3_instance):
        base = join_size(path3_instance)
        worst = 0
        for neighbor in enumerate_neighbors(path3_instance):
            worst = max(worst, abs(join_size(neighbor) - base))
        assert local_sensitivity(path3_instance) == worst

    def test_middle_relation_sees_both_sides(self):
        query = path3_query(3, 3, 3, 3)
        instance = Instance.from_tuple_lists(
            query,
            {
                "R1": [(0, 0), (1, 0), (2, 0)],
                "R2": [(0, 0)],
                "R3": [(0, 0), (0, 1)],
            },
        )
        per_relation = per_relation_local_sensitivity(instance)
        # Adding a tuple (0, 0) to R2 creates 3 × 2 = 6 join results.
        assert per_relation["R2"] == 6


class TestBoundaryQueries:
    def test_empty_subset_is_one(self, two_table_instance):
        assert boundary_query(two_table_instance, ()) == 1

    def test_singleton_subsets_are_degrees(self, two_table_instance):
        first, second = two_table_instance.relations
        assert boundary_query(two_table_instance, (0,)) == first.max_degree(["B"])
        assert boundary_query(two_table_instance, (1,)) == second.max_degree(["B"])

    def test_full_set_has_empty_boundary(self, two_table_instance):
        # ∂[m] = ∅ so T_[m] is the total join size.
        assert boundary_query(two_table_instance, (0, 1)) == join_size(two_table_instance)

    def test_all_boundary_queries_keys(self, path3_instance):
        values = all_boundary_queries(path3_instance)
        assert len(values) == 8
        assert values[frozenset()] == 1

    def test_chain_middle_subset(self, path3_instance):
        # T_{R1,R3}: boundary is {B, C}; R1 and R3 do not share attributes, so
        # the grouped size is deg_1(b)·deg_3(c) maximised over (b, c).
        first = path3_instance.relation("R1").degree(["B"])
        third = path3_instance.relation("R3").degree(["C"])
        expected = int(np.max(np.outer(first, third)))
        assert boundary_query(path3_instance, (0, 2)) == expected

    def test_profile_max_equals_boundary_query(self, two_table_instance):
        profile = boundary_query_profile(two_table_instance, (0,))
        assert int(profile.max()) == boundary_query(two_table_instance, (0,))
        assert profile.ndim == 1
