"""Unit tests for smooth sensitivity, degrees/q-aggregate bounds, and configurations."""

import math

import numpy as np
import pytest

from repro.relational.hypergraph import figure4_query, two_table_query
from repro.relational.instance import Instance
from repro.sensitivity.boundary import boundary_query
from repro.sensitivity.configurations import (
    bucket_index,
    bucket_upper_value,
    configuration_local_sensitivity,
    configuration_of_instance,
    configuration_residual_upper_bound,
)
from repro.sensitivity.degrees import degree_vector, max_degree, t_upper_bound
from repro.sensitivity.global_bound import (
    global_sensitivity_upper_bound,
    local_sensitivity_global_sensitivity,
)
from repro.sensitivity.local import local_sensitivity
from repro.sensitivity.residual import residual_sensitivity
from repro.sensitivity.smooth import (
    local_sensitivity_at_distance,
    smooth_sensitivity_bruteforce,
)


@pytest.fixture
def tiny_instance():
    query = two_table_query(2, 2, 2)
    return Instance.from_tuple_lists(query, {"R1": [(0, 0), (1, 0)], "R2": [(0, 1)]})


class TestSmoothSensitivity:
    def test_distance_zero_is_local_sensitivity(self, tiny_instance):
        assert local_sensitivity_at_distance(tiny_instance, 0) == local_sensitivity(
            tiny_instance
        )

    def test_distance_monotone(self, tiny_instance):
        values = [local_sensitivity_at_distance(tiny_instance, k) for k in range(3)]
        assert values[0] <= values[1] <= values[2]

    def test_two_table_distance_growth_is_additive(self, tiny_instance):
        """For two tables, adding k tuples raises the max degree by at most k."""
        base = local_sensitivity(tiny_instance)
        assert local_sensitivity_at_distance(tiny_instance, 2) == base + 2

    def test_sandwich_ls_le_ss_le_rs(self, tiny_instance):
        beta = 0.8
        ls = local_sensitivity(tiny_instance)
        ss = smooth_sensitivity_bruteforce(tiny_instance, beta, max_distance=3)
        rs = residual_sensitivity(tiny_instance, beta)
        assert ls <= ss + 1e-9
        assert ss <= rs + 1e-9

    def test_invalid_arguments(self, tiny_instance):
        with pytest.raises(ValueError):
            local_sensitivity_at_distance(tiny_instance, -1)
        with pytest.raises(ValueError):
            smooth_sensitivity_bruteforce(tiny_instance, 0.0)


class TestGlobalBound:
    def test_two_table_is_n(self):
        query = two_table_query(3, 3, 3)
        assert global_sensitivity_upper_bound(query, 100) == 100

    def test_single_table_is_one(self):
        from repro.relational.hypergraph import single_table_query

        assert global_sensitivity_upper_bound(single_table_query({"X": 4}), 50) == 1

    def test_three_table_power(self):
        from repro.relational.hypergraph import path3_query

        assert global_sensitivity_upper_bound(path3_query(2, 2, 2, 2), 10) == 100

    def test_ls_global_sensitivity(self):
        assert local_sensitivity_global_sensitivity(two_table_query(2, 2, 2)) == 1
        from repro.relational.hypergraph import path3_query

        assert local_sensitivity_global_sensitivity(path3_query(2, 2, 2, 2)) is None

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            global_sensitivity_upper_bound(two_table_query(2, 2, 2), -1)


class TestDegrees:
    def test_single_relation_degree_is_groupby_count(self, figure4_instance):
        query = figure4_instance.query
        degrees = degree_vector(figure4_instance, [0], ["A", "B"])
        expected = figure4_instance.relation("R1").degree(["A", "B"])
        assert np.array_equal(degrees, expected)

    def test_multi_relation_degree_counts_distinct(self, figure4_instance):
        # E = {R3, R4} (atom of G); ∩E = {A, B, G}; y = {A, B}: the degree of an
        # (A, B) value is the number of distinct G values present in R3 ⋈ R4.
        degrees = degree_vector(figure4_instance, [2, 3], ["A", "B"])
        assert degrees.shape == (3, 3)
        assert degrees.max() >= 1
        # Values come from counting distinct G values, so they are bounded by |dom(G)|.
        assert degrees.max() <= 3

    def test_degree_rejects_foreign_attributes(self, figure4_instance):
        with pytest.raises(ValueError):
            degree_vector(figure4_instance, [0], ["C"])  # C is not in R1
        with pytest.raises(ValueError):
            degree_vector(figure4_instance, [2, 3], ["K"])  # K not common to R3, R4

    def test_max_degree_empty_group(self, figure4_instance):
        # With no grouping attributes the degree of a single relation is its size.
        assert max_degree(figure4_instance, [0], []) == figure4_instance.relation(
            "R1"
        ).total()

    def test_t_upper_bound_dominates_boundary_query(self, figure4_instance):
        query = figure4_instance.query
        m = query.num_relations
        for excluded in range(m):
            subset = frozenset(range(m)) - {excluded}
            bound = t_upper_bound(figure4_instance, sorted(subset))
            exact = boundary_query(figure4_instance, sorted(subset))
            assert bound.value >= exact - 1e-9

    def test_t_upper_bound_factors_are_attributes(self, figure4_instance):
        """Lemma 4.8: each factor corresponds to a distinct attribute."""
        query = figure4_instance.query
        tree = query.attribute_tree()
        result = t_upper_bound(figure4_instance, [2, 3, 4])  # E = {R3, R4, R5}
        seen_attributes = set()
        for factor in result.factors:
            matches = [
                name
                for name in query.attribute_names
                if frozenset(query.atom(name)) == factor.relation_subset
                and frozenset(tree.ancestors(name)) == factor.group_attributes
            ]
            assert matches, f"factor {factor} does not correspond to an attribute"
            assert matches[0] not in seen_attributes
            seen_attributes.add(matches[0])

    def test_t_upper_bound_two_table(self, two_table_instance):
        # For a two-table join, T_{R2} = mdeg_2(B) exactly.
        result = t_upper_bound(two_table_instance, [1])
        assert result.value == two_table_instance.relation("R2").max_degree(["B"])


class TestConfigurations:
    def test_bucket_index_grid(self):
        lam = 4.0
        assert bucket_index(0.0, lam) == 1
        assert bucket_index(3.0, lam) == 1
        assert bucket_index(8.0, lam) == 1
        assert bucket_index(9.0, lam) == 2
        assert bucket_index(16.0, lam) == 2
        assert bucket_index(17.0, lam) == 3
        assert bucket_upper_value(2, lam) == 16.0

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            bucket_index(1.0, 0.0)
        with pytest.raises(ValueError):
            bucket_upper_value(0, 1.0)

    def test_configuration_of_instance(self, figure4_instance):
        configuration = configuration_of_instance(figure4_instance, lam=2.0)
        buckets = configuration.as_dict()
        assert set(buckets) == set(figure4_instance.query.attribute_names)
        assert all(index >= 1 for index in buckets.values())
        assert configuration.bucket_of("A") == buckets["A"]
        with pytest.raises(KeyError):
            configuration.bucket_of("Z")

    def test_configuration_bounds_dominate_exact_values(self, figure4_instance):
        lam = 2.0
        beta = 0.5
        query = figure4_instance.query
        configuration = configuration_of_instance(figure4_instance, lam)
        config_ls = configuration_local_sensitivity(query, configuration, lam)
        assert config_ls >= local_sensitivity(figure4_instance) - 1e-9
        config_rs = configuration_residual_upper_bound(query, configuration, beta, lam)
        assert config_rs >= residual_sensitivity(figure4_instance, beta) - 1e-9

    def test_configuration_rs_validation(self, figure4_instance):
        configuration = configuration_of_instance(figure4_instance, 2.0)
        with pytest.raises(ValueError):
            configuration_residual_upper_bound(
                figure4_instance.query, configuration, 0.0, 2.0
            )
