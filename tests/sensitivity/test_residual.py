"""Unit tests for residual sensitivity (Definition 3.6)."""

import math

import pytest

from repro.relational.hypergraph import path3_query, two_table_query
from repro.relational.instance import Instance
from repro.sensitivity.boundary import all_boundary_queries
from repro.sensitivity.local import local_sensitivity
from repro.sensitivity.residual import (
    certified_cutoff,
    maximize_residual_objective,
    residual_sensitivity,
    residual_sensitivity_profile,
)


def brute_force_residual(instance, beta: float, k_max: int) -> float:
    """Direct evaluation of Definition 3.6 by explicit composition enumeration."""
    from itertools import combinations

    query = instance.query
    m = query.num_relations
    boundary = all_boundary_queries(instance)

    def compositions(total, parts):
        if parts == 1:
            yield (total,)
            return
        for head in range(total + 1):
            for rest in compositions(total - head, parts - 1):
                yield (head,) + rest

    best = 0.0
    for k in range(k_max + 1):
        ls_hat = 0
        for i in range(m):
            others = [j for j in range(m) if j != i]
            for split in compositions(k, len(others)):
                s = dict(zip(others, split))
                value = 0
                for size in range(len(others) + 1):
                    for chosen in combinations(others, size):
                        remaining = frozenset(set(others) - set(chosen))
                        term = boundary[remaining]
                        for j in chosen:
                            term *= s[j]
                        value += term
                ls_hat = max(ls_hat, value)
        best = max(best, math.exp(-beta * k) * ls_hat)
    return best


class TestTwoTable:
    def test_k0_term_is_local_sensitivity(self, two_table_instance):
        profile = residual_sensitivity_profile(two_table_instance, beta=0.5)
        assert profile.ls_hat_by_k[0] == local_sensitivity(two_table_instance)

    def test_at_least_local_sensitivity(self, two_table_instance):
        for beta in (0.05, 0.2, 1.0):
            assert residual_sensitivity(two_table_instance, beta) >= local_sensitivity(
                two_table_instance
            ) - 1e-9

    def test_matches_brute_force(self, two_table_instance):
        for beta in (0.3, 0.7):
            expected = brute_force_residual(two_table_instance, beta, k_max=30)
            assert residual_sensitivity(two_table_instance, beta) == pytest.approx(expected)

    def test_closed_form_two_table(self, two_table_instance):
        """For two tables, RS^β = max_k e^{-βk}·(max(T1, T2) + k)... reduces to
        max over k of e^{-βk}(LS + k) since T_{other} = per-relation degree."""
        beta = 0.4
        boundary = all_boundary_queries(two_table_instance)
        t1 = boundary[frozenset({0})]
        t2 = boundary[frozenset({1})]
        expected = max(
            math.exp(-beta * k) * max(t1 + k, t2 + k) for k in range(0, 50)
        )
        assert residual_sensitivity(two_table_instance, beta) == pytest.approx(expected)

    def test_monotone_decreasing_in_beta(self, two_table_instance):
        values = [
            residual_sensitivity(two_table_instance, beta) for beta in (0.05, 0.2, 0.8)
        ]
        assert values[0] >= values[1] >= values[2]

    def test_empty_instance(self):
        query = two_table_query(2, 2, 2)
        value = residual_sensitivity(Instance.empty(query), 0.5)
        # LŜ^k = k for the empty two-table instance (adding k tuples to one side).
        expected = max(math.exp(-0.5 * k) * k for k in range(20))
        assert value == pytest.approx(expected)

    def test_invalid_beta(self, two_table_instance):
        with pytest.raises(ValueError):
            residual_sensitivity(two_table_instance, 0.0)


class TestMultiTable:
    def test_matches_brute_force_three_tables(self, path3_instance):
        for beta in (0.4, 0.8):
            expected = brute_force_residual(path3_instance, beta, k_max=25)
            assert residual_sensitivity(path3_instance, beta) == pytest.approx(expected)

    def test_smoothness_on_neighbors(self, path3_instance, rng):
        """RS^β is a β-smooth upper bound: neighbouring values differ by ≤ e^β."""
        from repro.relational.neighbors import random_neighbor

        beta = 0.3
        base = residual_sensitivity(path3_instance, beta)
        for _ in range(8):
            neighbor = random_neighbor(path3_instance, rng)
            other = residual_sensitivity(neighbor, beta)
            assert other <= base * math.exp(beta) + 1e-9
            assert other >= base * math.exp(-beta) - 1e-9

    def test_profile_fields(self, path3_instance):
        profile = residual_sensitivity_profile(path3_instance, 0.5)
        assert profile.certified
        assert profile.cutoff >= certified_cutoff(3, 0.5) - 1
        assert profile.value == pytest.approx(
            max(
                math.exp(-0.5 * k) * v for k, v in profile.ls_hat_by_k.items()
            )
        )
        assert profile.maximizing_k in profile.ls_hat_by_k

    def test_explicit_k_max_is_uncertified(self, path3_instance):
        profile = residual_sensitivity_profile(path3_instance, 0.5, k_max=2)
        assert not profile.certified
        assert profile.cutoff == 2


class TestCutoffAndMaximizer:
    def test_certified_cutoff_monotone(self):
        assert certified_cutoff(3, 0.1) > certified_cutoff(3, 1.0)
        assert certified_cutoff(5, 0.5) > certified_cutoff(2, 0.5)
        assert certified_cutoff(1, 0.5) == 1

    def test_maximizer_ignores_excluded_coordinate(self):
        # Coefficients for a 2-relation query: mass on the excluded index is wasted.
        coefficients = {
            frozenset(): 1.0,
            frozenset({0}): 2.0,
            frozenset({1}): 3.0,
            frozenset({0, 1}): 4.0,
        }
        value, per_k = maximize_residual_objective(
            coefficients, (0, 1), excluded_index=0, beta=1.0, total_cap=5
        )
        # For i = 0, the objective is e^{-β·s}(T_{1} + s) with T_{1}=3.
        expected = max(math.exp(-k) * (3 + k) for k in range(6))
        assert value == pytest.approx(expected)
        assert per_k[0] == pytest.approx(3.0)
