"""Unit tests for join-query hypergraphs and attribute trees."""

import pytest

from repro.relational.hypergraph import (
    JoinQuery,
    chain_query,
    figure4_query,
    path3_query,
    single_table_query,
    star_query,
    triangle_query,
    two_table_query,
)
from repro.relational.schema import Attribute, Domain, RelationSchema


class TestConstruction:
    def test_two_table_factory(self):
        query = two_table_query(3, 4, 5)
        assert query.num_relations == 2
        assert query.attribute_names == ("A", "B", "C")
        assert query.shape == (3, 4, 5)
        assert query.joint_domain_size == 60

    def test_chain_factory(self):
        query = chain_query([2, 3, 4, 5])
        assert query.num_relations == 3
        assert query.relation_names == ("R1", "R2", "R3")
        assert query.relation("R2").attribute_names == ("X1", "X2")

    def test_star_factory_is_hierarchical(self):
        query = star_query(4, [3, 3, 3])
        assert query.is_hierarchical()
        assert query.num_relations == 3

    def test_triangle_not_hierarchical(self):
        assert not triangle_query(3).is_hierarchical()

    def test_path3_not_hierarchical(self):
        assert not path3_query(3, 3, 3, 3).is_hierarchical()

    def test_single_table(self):
        query = single_table_query({"X": 4, "Y": 5})
        assert query.num_relations == 1
        assert query.joint_domain_size == 20

    def test_unknown_attribute_in_relation_rejected(self):
        a = Attribute("A", Domain.integers(2))
        b = Attribute("B", Domain.integers(2))
        schema = RelationSchema("R", (a, b))
        with pytest.raises(ValueError):
            JoinQuery((a,), (schema,))

    def test_unused_attribute_rejected(self):
        a = Attribute("A", Domain.integers(2))
        b = Attribute("B", Domain.integers(2))
        schema = RelationSchema("R", (a,))
        with pytest.raises(ValueError):
            JoinQuery((a, b), (schema,))

    def test_domain_mismatch_rejected(self):
        a = Attribute("A", Domain.integers(2))
        a_bigger = Attribute("A", Domain.integers(3))
        schema = RelationSchema("R", (a_bigger,))
        with pytest.raises(ValueError):
            JoinQuery((a,), (schema,))

    def test_duplicate_relation_names_rejected(self):
        a = Attribute("A", Domain.integers(2))
        schema = RelationSchema("R", (a,))
        with pytest.raises(ValueError):
            JoinQuery((a,), (schema, schema))


class TestStructure:
    def test_atom_sets(self):
        query = two_table_query(2, 2, 2)
        assert query.atom("A") == frozenset({0})
        assert query.atom("B") == frozenset({0, 1})
        assert query.atom("C") == frozenset({1})

    def test_boundary_two_table(self):
        query = two_table_query(2, 2, 2)
        assert query.boundary({0}) == frozenset({"B"})
        assert query.boundary({1}) == frozenset({"B"})
        assert query.boundary({0, 1}) == frozenset()
        assert query.boundary(()) == frozenset()

    def test_boundary_chain(self):
        query = path3_query(2, 2, 2, 2)
        assert query.boundary({0}) == frozenset({"B"})
        assert query.boundary({1}) == frozenset({"B", "C"})
        assert query.boundary({0, 1}) == frozenset({"C"})

    def test_attributes_of_and_common(self):
        query = path3_query(2, 2, 2, 2)
        assert query.attributes_of({0, 1}) == frozenset({"A", "B", "C"})
        assert query.common_attributes_of({0, 1}) == frozenset({"B"})
        assert query.common_attributes_of(()) == frozenset()

    def test_connected_components(self):
        query = path3_query(2, 2, 2, 2)
        components = query.connected_components({0, 2})
        assert set(map(frozenset, components)) == {frozenset({0}), frozenset({2})}
        assert query.is_connected({0, 1, 2})
        assert not query.is_connected({0, 2})

    def test_residual_connectivity_after_attribute_removal(self):
        query = path3_query(2, 2, 2, 2)
        # Removing the shared attribute B disconnects R1 from R2.
        assert not query.is_connected({0, 1}, removed_attributes={"B"})

    def test_relation_lookup(self):
        query = two_table_query(2, 2, 2)
        assert query.relation("R1").name == "R1"
        assert query.relation_index("R2") == 1
        with pytest.raises(KeyError):
            query.relation("nope")
        with pytest.raises(KeyError):
            query.relation_index("nope")

    def test_axis_of(self):
        query = two_table_query(2, 3, 4)
        assert query.axis_of("B") == 1
        with pytest.raises(KeyError):
            query.axis_of("Z")


class TestHierarchy:
    def test_two_table_is_hierarchical(self):
        assert two_table_query(2, 2, 2).is_hierarchical()

    def test_figure4_is_hierarchical(self):
        assert figure4_query(2).is_hierarchical()

    def test_figure4_attribute_tree_matches_paper(self):
        tree = figure4_query(2).attribute_tree()
        parent = dict(tree.parent)
        assert parent["A"] is None
        assert parent["B"] == "A"
        assert parent["C"] == "A"
        assert parent["D"] == "B"
        assert parent["F"] == "B"
        assert parent["G"] == "B"
        assert parent["K"] == "G"
        assert parent["L"] == "G"

    def test_relations_are_root_to_node_paths(self):
        query = figure4_query(2)
        tree = query.attribute_tree()
        for schema in query.relations:
            attrs = set(schema.attribute_names)
            # The deepest attribute's root path must equal the relation's attributes.
            deepest = max(schema.attribute_names, key=tree.depth)
            assert set(tree.path_from_root(deepest)) == attrs

    def test_attribute_tree_rejects_non_hierarchical(self):
        with pytest.raises(ValueError):
            triangle_query(2).attribute_tree()

    def test_bottom_up_order_children_before_parents(self):
        tree = figure4_query(2).attribute_tree()
        order = tree.bottom_up_order()
        positions = {name: index for index, name in enumerate(order)}
        for name in order:
            parent = tree.parent[name]
            if parent is not None:
                assert positions[name] < positions[parent]

    def test_ancestors(self):
        tree = figure4_query(2).attribute_tree()
        assert tree.ancestors("K") == ("A", "B", "G")
        assert tree.ancestors("A") == ()
        assert tree.depth("L") == 3

    def test_star_tree(self):
        tree = star_query(3, [2, 2]).attribute_tree()
        assert tree.parent["H"] is None
        assert tree.parent["X0"] == "H"
        assert tree.parent["X1"] == "H"

    def test_equal_atom_attributes_are_chained(self):
        # Both attributes of a single-relation query share the same atom set
        # and must be chained so the relation is a root-to-node path.
        query = single_table_query({"X": 2, "Y": 2})
        tree = query.attribute_tree()
        parents = [tree.parent["X"], tree.parent["Y"]]
        assert parents.count(None) == 1
