"""Unit tests for frequency-annotated relations."""

import numpy as np
import pytest

from repro.relational.relation import Relation, relation_from_pairs
from repro.relational.schema import Attribute, Domain, RelationSchema


@pytest.fixture
def schema() -> RelationSchema:
    return RelationSchema(
        "R", (Attribute("A", Domain.integers(3)), Attribute("B", Domain.integers(4)))
    )


class TestConstruction:
    def test_empty(self, schema):
        relation = Relation.empty(schema)
        assert relation.total() == 0
        assert relation.support_size() == 0
        assert relation.shape == (3, 4)

    def test_from_tuples_multiset(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1), (0, 1), (2, 3)])
        assert relation.total() == 3
        assert relation.multiplicity((0, 1)) == 2
        assert relation.multiplicity((2, 3)) == 1
        assert relation.multiplicity((1, 1)) == 0

    def test_from_counts(self, schema):
        relation = Relation.from_counts(schema, {(0, 0): 5, (1, 2): 3})
        assert relation.total() == 8
        assert relation.multiplicity((0, 0)) == 5

    def test_from_counts_rejects_negative(self, schema):
        with pytest.raises(ValueError):
            Relation.from_counts(schema, {(0, 0): -1})

    def test_full(self, schema):
        relation = Relation.full(schema, 2)
        assert relation.total() == 2 * 12
        assert relation.support_size() == 12

    def test_shape_mismatch_rejected(self, schema):
        with pytest.raises(ValueError):
            Relation(schema, np.zeros((3, 3), dtype=np.int64))

    def test_negative_frequencies_rejected(self, schema):
        freq = np.zeros((3, 4), dtype=np.int64)
        freq[0, 0] = -1
        with pytest.raises(ValueError):
            Relation(schema, freq)

    def test_non_integral_frequencies_rejected(self, schema):
        freq = np.zeros((3, 4))
        freq[0, 0] = 0.5
        with pytest.raises(ValueError):
            Relation(schema, freq)

    def test_float_but_integral_frequencies_accepted(self, schema):
        freq = np.zeros((3, 4))
        freq[0, 0] = 2.0
        relation = Relation(schema, freq)
        assert relation.multiplicity((0, 0)) == 2

    def test_wrong_arity_tuple_rejected(self, schema):
        with pytest.raises(ValueError):
            Relation.from_tuples(schema, [(0,)])

    def test_frequencies_read_only(self, schema):
        relation = Relation.from_tuples(schema, [(0, 0)])
        with pytest.raises(ValueError):
            relation.frequencies[0, 0] = 7

    def test_relation_from_pairs_helper(self):
        relation = relation_from_pairs(
            "S", [("X", Domain.integers(2)), ("Y", Domain.integers(2))], [(0, 1), (1, 1)]
        )
        assert relation.name == "S"
        assert relation.total() == 2


class TestAccessors:
    def test_tuples_iteration(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1), (0, 1), (2, 0)])
        listed = dict(relation.tuples())
        assert listed == {(0, 1): 2, (2, 0): 1}

    def test_equality(self, schema):
        first = Relation.from_tuples(schema, [(0, 1)])
        second = Relation.from_tuples(schema, [(0, 1)])
        third = Relation.from_tuples(schema, [(1, 1)])
        assert first == second
        assert first != third

    def test_repr_contains_name_and_total(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1)])
        assert "R" in repr(relation)
        assert "total=1" in repr(relation)


class TestAlgebra:
    def test_with_delta_add_and_remove(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1)])
        added = relation.with_delta((0, 1), +1)
        assert added.multiplicity((0, 1)) == 2
        removed = added.with_delta((0, 1), -2)
        assert removed.multiplicity((0, 1)) == 0
        # The original is untouched (immutability).
        assert relation.multiplicity((0, 1)) == 1

    def test_with_delta_below_zero_rejected(self, schema):
        relation = Relation.empty(schema)
        with pytest.raises(ValueError):
            relation.with_delta((0, 0), -1)

    def test_addition(self, schema):
        first = Relation.from_tuples(schema, [(0, 1)])
        second = Relation.from_tuples(schema, [(0, 1), (2, 2)])
        combined = first + second
        assert combined.multiplicity((0, 1)) == 2
        assert combined.total() == 3

    def test_degree_single_attribute(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1), (0, 2), (1, 1)])
        degrees = relation.degree(["A"])
        assert degrees.tolist() == [2, 1, 0]
        assert relation.max_degree(["A"]) == 2

    def test_degree_attribute_order(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1), (0, 2), (1, 1)])
        ab = relation.degree(["A", "B"])
        ba = relation.degree(["B", "A"])
        assert ab.shape == (3, 4)
        assert ba.shape == (4, 3)
        assert np.array_equal(ab, ba.T)

    def test_degree_of_all_attributes_is_frequency(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1), (0, 1), (2, 3)])
        assert np.array_equal(relation.degree(["A", "B"]), relation.frequencies)

    def test_degree_of_empty_attribute_list_is_total(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1), (1, 2)])
        assert int(relation.degree([])) == 2

    def test_restrict(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1), (1, 1), (2, 3)])
        mask = np.array([True, False, True])
        restricted = relation.restrict("A", mask)
        assert restricted.multiplicity((0, 1)) == 1
        assert restricted.multiplicity((1, 1)) == 0
        assert restricted.multiplicity((2, 3)) == 1

    def test_restrict_mask_shape_checked(self, schema):
        relation = Relation.empty(schema)
        with pytest.raises(ValueError):
            relation.restrict("A", np.array([True, False]))

    def test_restrict_joint(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1), (1, 2), (2, 3)])
        mask = np.zeros((3, 4), dtype=bool)
        mask[0, 1] = True
        mask[2, 3] = True
        restricted = relation.restrict_joint(["A", "B"], mask)
        assert restricted.total() == 2
        assert restricted.multiplicity((1, 2)) == 0

    def test_restrict_joint_respects_attribute_order(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1), (1, 2)])
        mask_ba = np.zeros((4, 3), dtype=bool)
        mask_ba[1, 0] = True  # (B=1, A=0)
        restricted = relation.restrict_joint(["B", "A"], mask_ba)
        assert restricted.multiplicity((0, 1)) == 1
        assert restricted.multiplicity((1, 2)) == 0

    def test_restrict_joint_empty_attribute_list(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1)])
        kept = relation.restrict_joint([], np.asarray(True))
        dropped = relation.restrict_joint([], np.asarray(False))
        assert kept.total() == 1
        assert dropped.total() == 0

    def test_partition_by_restrict_joint_covers_relation(self, schema):
        relation = Relation.from_tuples(schema, [(0, 1), (1, 2), (2, 3), (2, 3)])
        mask = np.zeros((3, 4), dtype=bool)
        mask[:2, :] = True
        part1 = relation.restrict_joint(["A", "B"], mask)
        part2 = relation.restrict_joint(["A", "B"], ~mask)
        assert part1.total() + part2.total() == relation.total()
        assert (part1 + part2) == relation
