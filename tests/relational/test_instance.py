"""Unit tests for multi-table instances."""

import numpy as np
import pytest

from repro.relational.hypergraph import two_table_query
from repro.relational.instance import Instance
from repro.relational.relation import Relation


@pytest.fixture
def query():
    return two_table_query(3, 3, 3)


class TestConstruction:
    def test_empty(self, query):
        instance = Instance.empty(query)
        assert instance.total_size() == 0
        assert instance.num_relations == 2

    def test_from_tuple_lists(self, query):
        instance = Instance.from_tuple_lists(
            query, {"R1": [(0, 1), (1, 1)], "R2": [(1, 2)]}
        )
        assert instance.total_size() == 3
        assert instance.relation("R1").total() == 2
        assert instance.relation_sizes() == {"R1": 2, "R2": 1}

    def test_from_tuple_lists_missing_relation_is_empty(self, query):
        instance = Instance.from_tuple_lists(query, {"R1": [(0, 0)]})
        assert instance.relation("R2").total() == 0

    def test_from_frequencies(self, query):
        r1 = np.zeros((3, 3), dtype=np.int64)
        r1[0, 0] = 4
        instance = Instance.from_frequencies(query, {"R1": r1})
        assert instance.relation("R1").total() == 4
        assert instance.relation("R2").total() == 0

    def test_wrong_relation_count_rejected(self, query):
        r1 = Relation.empty(query.relations[0])
        with pytest.raises(ValueError):
            Instance(query, (r1,))

    def test_wrong_relation_order_rejected(self, query):
        r1 = Relation.empty(query.relations[0])
        r2 = Relation.empty(query.relations[1])
        with pytest.raises(ValueError):
            Instance(query, (r2, r1))


class TestAccessAndUpdate:
    def test_relation_by_index_and_name(self, query):
        instance = Instance.from_tuple_lists(query, {"R1": [(0, 0)]})
        assert instance.relation(0) is instance.relation("R1")
        assert instance.schema("R2").name == "R2"
        assert instance.schema(1).name == "R2"

    def test_iteration(self, query):
        instance = Instance.empty(query)
        assert [relation.name for relation in instance] == ["R1", "R2"]

    def test_with_relation(self, query):
        instance = Instance.empty(query)
        replacement = Relation.from_tuples(query.relations[0], [(1, 1)])
        updated = instance.with_relation("R1", replacement)
        assert updated.relation("R1").total() == 1
        assert instance.relation("R1").total() == 0

    def test_with_delta(self, query):
        instance = Instance.empty(query)
        updated = instance.with_delta("R2", (2, 2), +3)
        assert updated.relation("R2").multiplicity((2, 2)) == 3

    def test_restrict(self, query):
        instance = Instance.from_tuple_lists(
            query, {"R1": [(0, 0), (1, 1)], "R2": [(0, 0), (1, 1)]}
        )
        mask = np.array([True, False, False])
        restricted = instance.restrict("B", mask)
        assert restricted.relation("R1").total() == 1
        assert restricted.relation("R2").total() == 1

    def test_sub_instance(self, query):
        instance = Instance.from_tuple_lists(query, {"R1": [(0, 0)], "R2": [(0, 0)]})
        replacement = Relation.empty(query.relations[1])
        updated = instance.sub_instance({"R2": replacement})
        assert updated.relation("R2").total() == 0
        assert updated.relation("R1").total() == 1

    def test_equality(self, query):
        first = Instance.from_tuple_lists(query, {"R1": [(0, 0)]})
        second = Instance.from_tuple_lists(query, {"R1": [(0, 0)]})
        third = Instance.from_tuple_lists(query, {"R1": [(1, 0)]})
        assert first == second
        assert first != third

    def test_repr(self, query):
        instance = Instance.from_tuple_lists(query, {"R1": [(0, 0)]})
        assert "n=1" in repr(instance)
