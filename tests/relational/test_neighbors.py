"""Unit tests for neighbouring-instance utilities."""

import numpy as np
import pytest

from repro.relational.hypergraph import two_table_query
from repro.relational.instance import Instance
from repro.relational.neighbors import (
    enumerate_neighbors,
    instance_distance,
    is_neighboring,
    random_neighbor,
)


@pytest.fixture
def base_instance():
    query = two_table_query(2, 2, 2)
    return Instance.from_tuple_lists(query, {"R1": [(0, 0), (1, 1)], "R2": [(0, 1)]})


class TestIsNeighboring:
    def test_addition_is_neighbor(self, base_instance):
        neighbor = base_instance.with_delta("R2", (1, 1), +1)
        assert is_neighboring(base_instance, neighbor)
        assert is_neighboring(neighbor, base_instance)

    def test_removal_is_neighbor(self, base_instance):
        neighbor = base_instance.with_delta("R1", (0, 0), -1)
        assert is_neighboring(base_instance, neighbor)

    def test_identical_instances_are_not_neighbors(self, base_instance):
        assert not is_neighboring(base_instance, base_instance)

    def test_two_changes_are_not_neighbors(self, base_instance):
        other = base_instance.with_delta("R1", (0, 0), -1).with_delta("R2", (1, 1), +1)
        assert not is_neighboring(base_instance, other)

    def test_multiplicity_jump_of_two_is_not_neighbor(self, base_instance):
        other = base_instance.with_delta("R2", (1, 1), +2)
        assert not is_neighboring(base_instance, other)


class TestDistance:
    def test_distance_zero(self, base_instance):
        assert instance_distance(base_instance, base_instance) == 0

    def test_distance_counts_all_changes(self, base_instance):
        other = base_instance.with_delta("R1", (0, 0), -1).with_delta("R2", (1, 1), +2)
        assert instance_distance(base_instance, other) == 3


class TestEnumeration:
    def test_removals_cover_support(self, base_instance):
        removals = list(
            enumerate_neighbors(base_instance, include_additions=False)
        )
        assert len(removals) == 3  # three records in the support
        for neighbor in removals:
            assert is_neighboring(base_instance, neighbor)
            assert neighbor.total_size() == base_instance.total_size() - 1

    def test_additions_cover_domain(self, base_instance):
        additions = list(
            enumerate_neighbors(base_instance, include_removals=False)
        )
        assert len(additions) == 8  # 4 domain cells per relation
        for neighbor in additions:
            assert is_neighboring(base_instance, neighbor)

    def test_max_neighbors_cap(self, base_instance):
        capped = list(enumerate_neighbors(base_instance, max_neighbors=5))
        assert len(capped) == 5


class TestRandomNeighbor:
    def test_random_neighbor_is_neighbor(self, base_instance, rng):
        for _ in range(25):
            neighbor = random_neighbor(base_instance, rng)
            assert is_neighboring(base_instance, neighbor)

    def test_random_neighbor_of_empty_instance_adds(self, rng):
        query = two_table_query(2, 2, 2)
        empty = Instance.empty(query)
        neighbor = random_neighbor(empty, rng)
        assert neighbor.total_size() == 1
