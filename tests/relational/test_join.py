"""Unit tests for natural-join evaluation."""

import numpy as np
import pytest

from repro.relational.hypergraph import path3_query, triangle_query, two_table_query
from repro.relational.instance import Instance
from repro.relational.join import (
    expand_to_joint,
    grouped_join_size,
    join_result,
    join_size,
    join_size_brute_force,
    joint_domain_size,
    materialized_join_tuples,
    semijoin_reduce,
)


class TestTwoTableJoin:
    def test_simple_join_size(self, two_table_instance):
        assert join_size(two_table_instance) == join_size_brute_force(two_table_instance)

    def test_join_result_sums_to_join_size(self, two_table_instance):
        joint = join_result(two_table_instance)
        assert int(joint.sum()) == join_size(two_table_instance)

    def test_join_result_entry(self):
        query = two_table_query(2, 2, 2)
        instance = Instance.from_tuple_lists(
            query, {"R1": [(0, 0), (0, 0)], "R2": [(0, 1)]}
        )
        joint = join_result(instance)
        # R1(0,0) has multiplicity 2, R2(0,1) multiplicity 1 → Join(0,0,1) = 2.
        assert joint[0, 0, 1] == 2
        assert joint.sum() == 2

    def test_empty_relation_gives_empty_join(self):
        query = two_table_query(3, 3, 3)
        instance = Instance.from_tuple_lists(query, {"R1": [(0, 0)]})
        assert join_size(instance) == 0
        assert np.all(join_result(instance) == 0)

    def test_cross_product_when_single_join_value(self):
        query = two_table_query(4, 1, 4)
        instance = Instance.from_tuple_lists(
            query,
            {"R1": [(a, 0) for a in range(4)], "R2": [(0, c) for c in range(3)]},
        )
        assert join_size(instance) == 12

    def test_multiplicities_multiply(self):
        query = two_table_query(2, 2, 2)
        instance = Instance.from_frequencies(
            query,
            {
                "R1": np.array([[3, 0], [0, 0]]),
                "R2": np.array([[5, 0], [0, 0]]),
            },
        )
        assert join_size(instance) == 15


class TestMultiWayJoin:
    def test_path3_matches_brute_force(self, path3_instance):
        assert join_size(path3_instance) == join_size_brute_force(path3_instance)

    def test_triangle_join(self):
        query = triangle_query(3)
        instance = Instance.from_tuple_lists(
            query,
            {
                "R1": [(0, 1), (0, 2)],
                "R2": [(1, 2), (2, 2)],
                "R3": [(0, 2)],
            },
        )
        # Triangles: (A=0,B=1,C=2) and (A=0,B=2,C=2).
        assert join_size(instance) == 2
        assert join_size(instance) == join_size_brute_force(instance)

    def test_figure4_join(self, figure4_instance):
        assert join_size(figure4_instance) == join_size_brute_force(figure4_instance)


class TestGroupedJoinSize:
    def test_group_by_join_attribute(self, two_table_instance):
        grouped = grouped_join_size(two_table_instance, [0, 1], ["B"])
        joint = join_result(two_table_instance)
        assert np.array_equal(grouped, joint.sum(axis=(0, 2)))

    def test_group_by_empty_is_total(self, two_table_instance):
        assert grouped_join_size(two_table_instance, [0, 1], []) == join_size(
            two_table_instance
        )

    def test_subset_of_relations(self, two_table_instance):
        # Grouping R2 alone by B gives deg_2(b).
        grouped = grouped_join_size(two_table_instance, [1], ["B"])
        expected = two_table_instance.relation("R2").degree(["B"])
        assert np.array_equal(grouped, expected)

    def test_empty_subset(self, two_table_instance):
        assert grouped_join_size(two_table_instance, [], []) == 1

    def test_group_order_controls_axes(self, path3_instance):
        bc = grouped_join_size(path3_instance, [0, 1, 2], ["B", "C"])
        cb = grouped_join_size(path3_instance, [0, 1, 2], ["C", "B"])
        assert np.array_equal(bc, cb.T)


class TestHelpers:
    def test_joint_domain_size(self):
        assert joint_domain_size(two_table_query(3, 4, 5)) == 60

    def test_expand_to_joint_broadcasting(self):
        query = two_table_query(2, 3, 4)
        array = np.arange(12).reshape(3, 4)  # over (B, C)
        expanded = expand_to_joint(query, array, ["B", "C"])
        assert expanded.shape == (1, 3, 4)
        # Attribute order different from the query's order is handled.
        transposed = expand_to_joint(query, array.T, ["C", "B"])
        assert np.array_equal(expanded, transposed)

    def test_materialized_join_tuples(self):
        query = two_table_query(2, 2, 2)
        instance = Instance.from_tuple_lists(query, {"R1": [(0, 1)], "R2": [(1, 0)]})
        tuples = materialized_join_tuples(instance)
        assert tuples == [((0, 1, 0), 1)]

    def test_semijoin_reduce_preserves_join(self, two_table_instance):
        reduced = semijoin_reduce(two_table_instance)
        assert join_size(reduced) == join_size(two_table_instance)
        assert np.array_equal(join_result(reduced), join_result(two_table_instance))
        # Dangling tuples are removed, never added.
        assert reduced.total_size() <= two_table_instance.total_size()

    def test_semijoin_reduce_removes_dangling(self):
        query = two_table_query(3, 3, 3)
        instance = Instance.from_tuple_lists(
            query, {"R1": [(0, 0), (1, 1)], "R2": [(0, 2)]}
        )
        reduced = semijoin_reduce(instance)
        # R1(1, 1) joins with nothing and must disappear.
        assert reduced.relation("R1").multiplicity((1, 1)) == 0
        assert reduced.relation("R1").multiplicity((0, 0)) == 1
