"""Unit tests for domains, attributes, and relation schemas."""

import pytest

from repro.relational.schema import Attribute, Domain, RelationSchema


class TestDomain:
    def test_values_preserved_in_order(self):
        domain = Domain(["x", "y", "z"])
        assert domain.values == ("x", "y", "z")
        assert domain.size == 3

    def test_index_round_trip(self):
        domain = Domain([10, 20, 30])
        for position, value in enumerate(domain):
            assert domain.index_of(value) == position
            assert domain.value_at(position) == value

    def test_membership(self):
        domain = Domain(["a", "b"])
        assert "a" in domain
        assert "c" not in domain

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError):
            Domain(["a", "a"])

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Domain([])

    def test_of_size(self):
        domain = Domain.of_size(4, prefix="t")
        assert domain.size == 4
        assert domain.value_at(0) == "t0"

    def test_integers(self):
        domain = Domain.integers(5)
        assert list(domain) == [0, 1, 2, 3, 4]

    def test_of_size_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Domain.of_size(0)
        with pytest.raises(ValueError):
            Domain.integers(-1)

    def test_equality_and_hash(self):
        assert Domain([1, 2]) == Domain([1, 2])
        assert Domain([1, 2]) != Domain([2, 1])
        assert hash(Domain([1, 2])) == hash(Domain([1, 2]))

    def test_index_of_unknown_value_raises(self):
        with pytest.raises(KeyError):
            Domain([1]).index_of(7)

    def test_len_matches_size(self):
        domain = Domain.integers(9)
        assert len(domain) == domain.size == 9

    def test_repr_small_and_large(self):
        assert "Domain" in repr(Domain([1, 2]))
        assert "size=20" in repr(Domain.integers(20))


class TestAttribute:
    def test_basic(self):
        attribute = Attribute("A", Domain.integers(3))
        assert attribute.name == "A"
        assert attribute.size == 3

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("", Domain.integers(2))


class TestRelationSchema:
    def test_shape_and_domain_size(self):
        schema = RelationSchema(
            "R", (Attribute("A", Domain.integers(3)), Attribute("B", Domain.integers(4)))
        )
        assert schema.shape == (3, 4)
        assert schema.domain_size == 12
        assert schema.attribute_names == ("A", "B")

    def test_axis_of(self):
        schema = RelationSchema(
            "R", (Attribute("A", Domain.integers(2)), Attribute("B", Domain.integers(2)))
        )
        assert schema.axis_of("A") == 0
        assert schema.axis_of("B") == 1
        with pytest.raises(KeyError):
            schema.axis_of("C")

    def test_attribute_lookup(self):
        a = Attribute("A", Domain.integers(2))
        schema = RelationSchema("R", (a,))
        assert schema.attribute("A") is a
        with pytest.raises(KeyError):
            schema.attribute("Z")

    def test_has_attribute(self):
        schema = RelationSchema("R", (Attribute("A", Domain.integers(2)),))
        assert schema.has_attribute("A")
        assert not schema.has_attribute("B")

    def test_duplicate_attributes_rejected(self):
        a = Attribute("A", Domain.integers(2))
        with pytest.raises(ValueError):
            RelationSchema("R", (a, a))

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("R", ())
        with pytest.raises(ValueError):
            RelationSchema("", (Attribute("A", Domain.integers(2)),))
