"""Unit tests for the data generators."""

from math import isqrt

import numpy as np
import pytest

from repro.datagen.random_instances import random_instance
from repro.datagen.synthetic import (
    example42_instance,
    figure1_pair,
    figure3_instance,
    skewed_two_table,
    uniform_two_table,
    zipf_two_table,
)
from repro.datagen.tpch import MARKET_SEGMENTS, ORDER_PRIORITIES, generate_tpch
from repro.relational.hypergraph import figure4_query, two_table_query
from repro.relational.join import join_size
from repro.relational.neighbors import is_neighboring
from repro.sensitivity.local import local_sensitivity


class TestFigure1:
    def test_join_sizes_n_and_zero(self):
        pair = figure1_pair(15)
        assert join_size(pair.instance) == 15
        assert join_size(pair.neighbor) == 0

    def test_pair_is_neighboring(self):
        pair = figure1_pair(10)
        assert is_neighboring(pair.instance, pair.neighbor)

    def test_side_domain_parameter(self):
        pair = figure1_pair(10, side_domain_size=3)
        assert pair.query.shape == (10, 3, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            figure1_pair(0)
        with pytest.raises(ValueError):
            figure1_pair(5, side_domain_size=0)


class TestFigure3:
    @pytest.mark.parametrize("n", [16, 64, 100])
    def test_structure(self, n):
        instance = figure3_instance(n)
        root = isqrt(n)
        # Input size is 2·(1 + 2 + ... + √n).
        assert instance.total_size() == root * (root + 1)
        # Join size is Σ i² over i ≤ √n.
        assert join_size(instance) == sum(i * i for i in range(1, root + 1))
        assert local_sensitivity(instance) == root

    def test_degree_profile(self):
        instance = figure3_instance(25)
        degrees = instance.relation("R1").degree(["B"])
        assert sorted(int(d) for d in degrees) == [1, 2, 3, 4, 5]


class TestExample42:
    def test_structure(self):
        k = 8
        instance = example42_instance(k)
        # Local sensitivity is k^(2/3) = 4 (the largest degree level).
        assert local_sensitivity(instance) == round(k ** (2.0 / 3.0))
        assert instance.total_size() <= 2 * 2 * k * k
        assert join_size(instance) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            example42_instance(1)


class TestGenericTwoTableGenerators:
    def test_uniform(self):
        instance = uniform_two_table(5, 3)
        assert join_size(instance) == 5 * 9
        assert local_sensitivity(instance) == 3
        assert instance.total_size() == 2 * 15

    def test_skewed(self):
        instance = skewed_two_table(2, 10, 20, 1)
        assert local_sensitivity(instance) == 10
        assert join_size(instance) == 2 * 100 + 20

    def test_skewed_validation(self):
        with pytest.raises(ValueError):
            skewed_two_table(0, 0, 0, 0)

    def test_zipf_reproducible_and_sized(self):
        first = zipf_two_table(10, 200, seed=1)
        second = zipf_two_table(10, 200, seed=1)
        assert first == second
        assert first.relation("R1").total() == 200
        assert first.relation("R2").total() == 200

    def test_zipf_is_skewed(self):
        instance = zipf_two_table(20, 500, seed=2, exponent=1.5)
        degrees = np.sort(instance.relation("R1").degree(["B"]))[::-1]
        assert degrees[0] > degrees[5]

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_two_table(0, 1)


class TestTPCH:
    def test_structure_and_sizes(self):
        data = generate_tpch(0.5, seed=0)
        assert data.customer_orders.query.relation_names == ("Customer", "Orders")
        assert data.nation_customer_orders.num_relations == 3
        assert data.customer_orders.relation("Customer").total() == data.num_customers
        assert data.customer_orders.relation("Orders").total() == data.num_orders

    def test_scale_grows_tables(self):
        small = generate_tpch(0.5, seed=1)
        large = generate_tpch(2.0, seed=1)
        assert large.num_customers > small.num_customers
        assert large.num_orders > small.num_orders

    def test_domains_match_tpch_categories(self):
        data = generate_tpch(0.5, seed=2)
        query = data.customer_orders.query
        assert tuple(query.attribute("segment").domain) == MARKET_SEGMENTS
        assert tuple(query.attribute("priority").domain) == ORDER_PRIORITIES

    def test_every_order_joins_with_its_customer(self):
        data = generate_tpch(0.5, seed=3)
        # Each order references an existing customer, so the two-table join
        # size equals the number of orders.
        assert join_size(data.customer_orders) == data.num_orders
        # And the three-table chain keeps them (every customer has a nation).
        assert join_size(data.nation_customer_orders) == data.num_orders

    def test_order_skew(self):
        data = generate_tpch(1.0, seed=4, order_skew=1.5)
        per_customer = data.customer_orders.relation("Orders").degree(["custkey"])
        assert per_customer.max() >= 5 * max(1, int(np.median(per_customer)))

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_tpch(0.0)


class TestRandomInstance:
    def test_sizes(self):
        query = two_table_query(4, 4, 4)
        instance = random_instance(query, 25, seed=0)
        assert instance.relation("R1").total() == 25
        assert instance.relation("R2").total() == 25

    def test_multiplicity(self):
        query = figure4_query(2)
        instance = random_instance(query, 10, max_multiplicity=3, seed=1)
        assert instance.total_size() >= 10 * query.num_relations

    def test_validation(self):
        query = two_table_query(2, 2, 2)
        with pytest.raises(ValueError):
            random_instance(query, -1)
        with pytest.raises(ValueError):
            random_instance(query, 1, max_multiplicity=0)
