"""TPC-H-style analytics under differential privacy.

Run with::

    python examples/tpch_analytics.py

The example generates scaled-down TPC-H-style tables (see
``repro.datagen.tpch`` for the substitution notes), releases synthetic data
for the Customer ⋈ Orders join and the Nation ⋈ Customer ⋈ Orders chain, and
compares three ways of answering an analyst workload:

* exact (non-private) answers;
* one DP synthetic-data release answering every query (this paper);
* per-query Laplace noise under basic composition (the baseline the paper's
  introduction argues against).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import Workload, WorkloadEvaluator, join_size, release_synthetic_data
from repro.analysis.reporting import ExperimentTable
from repro.baselines.independent_laplace import independent_laplace_answers
from repro.datagen.tpch import generate_tpch

EPSILON = 1.0
DELTA = 1e-5


def run_join(instance, workload, label: str, table: ExperimentTable) -> None:
    evaluator = WorkloadEvaluator(workload)
    exact = evaluator.answers_on_instance(instance)

    release = release_synthetic_data(
        instance, workload, EPSILON, DELTA, seed=7, evaluator=evaluator
    )
    synthetic_answers = evaluator.answers_on_histogram(release.synthetic.histogram)
    laplace = independent_laplace_answers(instance, workload, EPSILON, DELTA, seed=8)

    synthetic_error = float(np.max(np.abs(synthetic_answers - exact)))
    laplace_error = float(np.max(np.abs(laplace.answers - exact)))
    table.add_row(
        [
            label,
            instance.total_size(),
            join_size(instance),
            len(workload),
            synthetic_error,
            laplace_error,
        ]
    )


def main() -> None:
    data = generate_tpch(scale=1.0, seed=3)
    table = ExperimentTable(
        title=f"TPC-H-style joins under ({EPSILON}, {DELTA})-DP (ℓ∞ error)",
        columns=["join", "n", "OUT", "|Q|", "synthetic release", "per-query Laplace"],
    )

    # Customer ⋈ Orders: marginals on market segment and order priority.
    customer_orders = data.customer_orders
    marginal_workload = Workload.attribute_marginals(
        customer_orders.query, "segment"
    ).extended(
        Workload.attribute_marginals(
            customer_orders.query, "priority", include_counting=False
        ).queries
    )
    run_join(customer_orders, marginal_workload, "Customer ⋈ Orders", table)

    # Nation ⋈ Customer ⋈ Orders: random predicate workload.
    chain = data.nation_customer_orders
    predicate_workload = Workload.random_predicates(
        chain.query, 32, selectivity=0.4, seed=5
    )
    run_join(chain, predicate_workload, "Nation ⋈ Customer ⋈ Orders", table)

    print(table)
    print()
    print(
        "The synthetic release answers the whole workload from one DP artefact, \n"
        "while the per-query baseline splits the budget across |Q| queries and \n"
        "degrades as the workload grows."
    )


if __name__ == "__main__":
    main()
