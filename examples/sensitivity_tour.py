"""A tour of the sensitivity toolbox.

Run with::

    python examples/sensitivity_tour.py

Computes, for several join-query shapes and instances, the quantities the
paper's algorithms are built on: local sensitivity, maximum boundary queries
``T_E``, residual sensitivity ``RS^β``, the brute-force smooth sensitivity on
a tiny instance, the q-aggregate degree upper bounds of Section 4.2.1, and
the AGM worst-case exponents of Appendix B.3.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import Instance, join_size, two_table_query
from repro.analysis.agm import fractional_edge_cover_number, worst_case_sensitivity_exponent
from repro.analysis.reporting import ExperimentTable
from repro.datagen.tpch import generate_tpch
from repro.relational.hypergraph import figure4_query, path3_query
from repro.sensitivity.boundary import all_boundary_queries
from repro.sensitivity.degrees import t_upper_bound
from repro.sensitivity.local import local_sensitivity, per_relation_local_sensitivity
from repro.sensitivity.residual import residual_sensitivity_profile
from repro.sensitivity.smooth import smooth_sensitivity_bruteforce


def two_table_section() -> None:
    print("=" * 70)
    print("Two-table join R1(A, B) ⋈ R2(B, C)")
    query = two_table_query(4, 3, 4)
    instance = Instance.from_tuple_lists(
        query,
        {"R1": [(0, 0), (1, 0), (2, 0), (3, 1)], "R2": [(0, 0), (0, 1), (1, 2), (2, 3)]},
    )
    print(f"n = {instance.total_size()}, OUT = {join_size(instance)}")
    print(f"per-relation local sensitivity: {per_relation_local_sensitivity(instance)}")
    print(f"LS_count(I) = {local_sensitivity(instance)}")
    print(f"smooth sensitivity (brute force, β=0.5): "
          f"{smooth_sensitivity_bruteforce(instance, 0.5, max_distance=2):.3f}")
    profile = residual_sensitivity_profile(instance, beta=0.5)
    print(f"residual sensitivity RS^0.5 = {profile.value:.3f} (maximising k = {profile.maximizing_k})")
    print("boundary queries T_E:")
    for subset, value in sorted(all_boundary_queries(instance).items(), key=lambda kv: sorted(kv[0])):
        names = [query.relation_names[i] for i in sorted(subset)] or ["∅"]
        print(f"  T_{{{', '.join(names)}}} = {value}")


def tpch_section() -> None:
    print("=" * 70)
    print("TPC-H-style 3-table chain Nation ⋈ Customer ⋈ Orders")
    data = generate_tpch(1.0, seed=0)
    instance = data.nation_customer_orders
    print(f"n = {instance.total_size()}, OUT = {join_size(instance)}")
    print(f"LS_count(I) = {local_sensitivity(instance)}")
    for beta in (0.05, 0.1, 0.5):
        profile = residual_sensitivity_profile(instance, beta=beta)
        print(f"RS^{beta:g} = {profile.value:.1f} (maximising k = {profile.maximizing_k})")


def hierarchical_section() -> None:
    print("=" * 70)
    print("Hierarchical Figure-4 query: q-aggregate upper bounds on T_E")
    query = figure4_query(3)
    instance = Instance.from_tuple_lists(
        query,
        {
            "R1": [(0, 0, 0), (0, 0, 1), (0, 1, 2)],
            "R2": [(0, 0, 2), (0, 1, 0)],
            "R3": [(0, 0, 1, 1), (0, 0, 2, 0)],
            "R4": [(0, 0, 1, 2)],
            "R5": [(0, 2), (1, 1)],
        },
    )
    for excluded in range(query.num_relations):
        subset = sorted(set(range(query.num_relations)) - {excluded})
        bound = t_upper_bound(instance, subset)
        names = [query.relation_names[i] for i in subset]
        factor_text = " · ".join(
            f"mdeg_{{{','.join(query.relation_names[j] for j in sorted(f.relation_subset))}}}"
            f"({','.join(sorted(f.group_attributes)) or '∅'})={f.value:g}"
            for f in bound.factors
        )
        print(f"  T_{{{', '.join(names)}}} ≤ {bound.value:g}   [{factor_text}]")


def agm_section() -> None:
    print("=" * 70)
    print("AGM exponents (Appendix B.3 worst-case analysis)")
    table = ExperimentTable(
        title="fractional edge cover numbers",
        columns=["query", "ρ(H)", "max_E ρ(H_E,∂E)"],
    )
    shapes = {
        "two-table": two_table_query(2, 2, 2),
        "3-chain": path3_query(2, 2, 2, 2),
        "figure-4": figure4_query(2),
    }
    for name, query in shapes.items():
        table.add_row(
            [name, fractional_edge_cover_number(query), worst_case_sensitivity_exponent(query)]
        )
    print(table)


def main() -> None:
    two_table_section()
    tpch_section()
    hierarchical_section()
    agm_section()


if __name__ == "__main__":
    main()
