"""Quickstart: release DP synthetic data for a two-table join and query it.

Run with::

    python examples/quickstart.py

The example builds a small Customer ⋈ Orders style two-table instance, asks
for a synthetic dataset under (ε, δ)-DP, and compares the answers of a
marginal workload computed from the synthetic data against the exact answers.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import (
    Instance,
    Workload,
    join_size,
    local_sensitivity,
    release_synthetic_data,
    two_table_query,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Define the join query R1(A, B) ⋈ R2(B, C): A = customer id,
    #    B = region id (the join key), C = order priority.
    query = two_table_query(30, 6, 5, names=("Customers", "Orders"))

    # 2. Populate the two private tables.
    customers = [(int(rng.integers(30)), int(rng.integers(6))) for _ in range(120)]
    orders = [(int(rng.integers(6)), int(rng.integers(5))) for _ in range(150)]
    instance = Instance.from_tuple_lists(query, {"Customers": customers, "Orders": orders})
    print(f"input size n = {instance.total_size()}, join size = {join_size(instance)}")
    print(f"local sensitivity Δ = {local_sensitivity(instance)}")

    # 3. Declare the query family the synthetic data should answer well:
    #    all marginals of the join key plus random sign queries.
    workload = Workload.attribute_marginals(query, "B").extended(
        Workload.random_sign(query, 16, seed=1, include_counting=False).queries
    )
    print(f"workload size |Q| = {len(workload)}")

    # 4. Release the synthetic dataset under (1, 1e-5)-differential privacy.
    result = release_synthetic_data(
        instance, workload, epsilon=1.0, delta=1e-5, seed=42
    )
    print(f"algorithm: {result.algorithm}, privacy: {result.privacy}")
    print(f"released total mass: {result.synthetic.total_mass():.1f}")

    # 5. Answer the workload from the synthetic data and report the error.
    report = result.error_report(instance, workload)
    print(report)

    # 6. Individual queries can be answered directly from the release too.
    count_query = workload[0]
    print(
        f"count(I) = {join_size(instance)}, released count ≈ "
        f"{result.synthetic.answer(count_query):.1f}"
    )


if __name__ == "__main__":
    main()
