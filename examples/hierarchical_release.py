"""Hierarchical uniformization on the paper's Figure 4 query.

Run with::

    python examples/hierarchical_release.py

Builds a skewed instance of the five-relation hierarchical query of Figure 4,
inspects the partition produced by Algorithms 6–7 (degree configurations,
per-tuple multiplicity of Lemma 4.10), and compares the hierarchical
uniformized release (Algorithm 4) against the plain residual-sensitivity
release (Algorithm 3).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import Workload, WorkloadEvaluator, join_size, local_sensitivity
from repro.core.hierarchical import partition_hierarchical
from repro.core.multi_table import default_beta, multi_table_release
from repro.core.uniformize import uniformize_release
from repro.experiments.e08_hierarchical import figure4_skewed_instance
from repro.sensitivity.configurations import configuration_of_instance
from repro.sensitivity.residual import residual_sensitivity

EPSILON = 1.0
DELTA = 1e-2


def main() -> None:
    instance = figure4_skewed_instance(domain_size=3, heavy_fanout=30, light_tuples=8, seed=0)
    query = instance.query
    print(f"query is hierarchical: {query.is_hierarchical()}")
    tree = query.attribute_tree()
    print("attribute tree (child <- parent):")
    for name in query.attribute_names:
        print(f"  {name} <- {tree.parent[name]}")
    print(f"n = {instance.total_size()}, OUT = {join_size(instance)}, Δ = {local_sensitivity(instance)}")

    beta = default_beta(EPSILON, DELTA)
    print(f"residual sensitivity RS^β (β = {beta:.3f}): "
          f"{residual_sensitivity(instance, beta):.1f}")
    configuration = configuration_of_instance(instance, lam=1.0 / beta)
    print(f"degree configuration under the uniform partition: {configuration}")

    partition = partition_hierarchical(instance, EPSILON / 2, DELTA / 2, seed=1)
    print(f"\nhierarchical partition: {partition.num_buckets} sub-instance(s)")
    for bucket in partition.buckets:
        sizes = bucket.sub_instance.relation_sizes()
        print(f"  configuration {bucket.configuration} -> sizes {sizes}")
    print(f"per-tuple multiplicity (Lemma 4.10): {partition.tuple_multiplicity(instance)}")

    workload = Workload.random_sign(query, 16, seed=2)
    evaluator = WorkloadEvaluator(workload)
    exact = evaluator.answers_on_instance(instance)

    plain = multi_table_release(instance, workload, EPSILON, DELTA, seed=3, evaluator=evaluator)
    uniform = uniformize_release(
        instance, workload, EPSILON, DELTA, method="hierarchical", seed=3, evaluator=evaluator
    )
    error_plain = float(np.max(np.abs(evaluator.answers_on_histogram(plain.synthetic.histogram) - exact)))
    error_uniform = float(np.max(np.abs(evaluator.answers_on_histogram(uniform.synthetic.histogram) - exact)))

    print(f"\nAlgorithm 3 (MultiTable) ℓ∞ error:        {error_plain:.1f}  [{plain.privacy}]")
    print(f"Algorithm 4 (hierarchical Uniformize) ℓ∞: {error_uniform:.1f}  [{uniform.privacy}]")
    print(
        "\nNote: the hierarchical uniformization pays a group-privacy factor for the\n"
        "tuple multiplicity (Lemma 4.11); its reported privacy spec above reflects that."
    )


if __name__ == "__main__":
    main()
