"""Uniformized sensitivity on a skewed join (Figure 3 / Section 4).

Run with::

    python examples/skewed_join_uniformization.py

The example builds the paper's Figure 3 instance — join values with degrees
1, 2, ..., √n, i.e. a maximally non-uniform degree distribution — and compares
the plain join-as-one algorithm (Algorithm 1) against the uniformized release
(Algorithm 4), together with the theoretical error expressions of
Theorems 3.3 and 4.4.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import Workload, WorkloadEvaluator, join_size, local_sensitivity
from repro.analysis.bounds import lam, theorem_33_error, theorem_44_error
from repro.analysis.reporting import ExperimentTable
from repro.core.two_table import two_table_release
from repro.core.uniformize import uniformize_release
from repro.datagen.synthetic import figure3_instance
from repro.experiments.e06_uniformize_two_table import uniform_bucket_join_sizes

EPSILON = 1.0
DELTA = 1e-4


def main() -> None:
    instance = figure3_instance(n=256)
    query = instance.query
    workload = Workload.random_sign(query, 32, seed=0)
    evaluator = WorkloadEvaluator(workload)
    exact = evaluator.answers_on_instance(instance)

    print(
        f"Figure 3 instance: n = {instance.total_size()}, OUT = {join_size(instance)}, "
        f"Δ = {local_sensitivity(instance)}"
    )

    join_as_one = two_table_release(
        instance, workload, EPSILON, DELTA, seed=1, evaluator=evaluator
    )
    uniformized = uniformize_release(
        instance, workload, EPSILON, DELTA, method="two_table", seed=1, evaluator=evaluator
    )

    error_one = float(
        np.max(np.abs(evaluator.answers_on_histogram(join_as_one.synthetic.histogram) - exact))
    )
    error_uniform = float(
        np.max(np.abs(evaluator.answers_on_histogram(uniformized.synthetic.histogram) - exact))
    )

    lam_value = lam(EPSILON, DELTA)
    bound_one = theorem_33_error(
        join_size(instance),
        local_sensitivity(instance),
        query.joint_domain_size,
        len(workload),
        EPSILON,
        DELTA,
    )
    bound_uniform = theorem_44_error(
        uniform_bucket_join_sizes(instance, lam_value),
        local_sensitivity(instance),
        query.joint_domain_size,
        len(workload),
        EPSILON,
        DELTA,
    )

    table = ExperimentTable(
        title="Join-as-one (Algorithm 1) vs uniformized (Algorithm 4)",
        columns=["algorithm", "measured ℓ∞ error", "theoretical bound"],
    )
    table.add_row(["join-as-one (Thm 3.3)", error_one, bound_one])
    table.add_row(["uniformized (Thm 4.4)", error_uniform, bound_uniform])
    print(table)

    buckets = uniformized.diagnostics["buckets"]
    print(f"\nuniformized release used {len(buckets)} degree buckets:")
    for entry in buckets:
        print(
            f"  bucket {entry['bucket']}: sub-instance size {entry['sub_instance_size']}, "
            f"noisy Δ̃ {entry['delta_tilde']:.1f}"
        )
    print(
        "\nAt asymptotic scales the uniformized bound wins by a polynomial factor "
        "(Example 4.2); at laptop scales the fixed per-bucket noise keeps the plain "
        "algorithm competitive — exactly the trade-off the two theorems describe."
    )


if __name__ == "__main__":
    main()
